//! The shared air interface between the tags and the reader.
//!
//! A [`Medium`] owns the per-tag channel coefficients, the carrier-leakage
//! baseline, and the AWGN source, and turns "which tags reflected a 1 in this
//! slot" into the complex symbol the reader receives.  This is the single
//! point through which every protocol (Buzz, TDMA, CDMA, FSA) touches the
//! physical layer, so all schemes experience identical channels and noise for
//! a given scenario — mirroring how the paper runs the compared schemes
//! back-to-back without moving the tags.

use std::sync::Arc;

use backscatter_phy::channel::Channel;
use backscatter_phy::complex::Complex;
use backscatter_phy::modulation::CarrierLeakage;
use backscatter_phy::noise::AwgnSource;
use backscatter_phy::signal::{PowerDetector, SlotObservation};
use backscatter_prng::{SplitMix64, Xoshiro256};

use crate::dynamics::{ScenarioDynamics, SlotView};
use crate::faults::{FaultPlan, SlotFaults};
use crate::{SimError, SimResult};

/// Configuration of a [`Medium`].
#[derive(Debug, Clone, Copy)]
pub struct MediumConfig {
    /// Total AWGN power per received symbol.
    pub noise_power: f64,
    /// Number of independent noise looks averaged for an occupancy (power)
    /// decision.  The reader integrates over a whole slot (many samples per
    /// bit), which suppresses noise for the empty/occupied decision relative
    /// to a single symbol draw.
    pub occupancy_integration: usize,
    /// Seed for the noise source.
    pub noise_seed: u64,
    /// Whether to keep a per-slot log (useful for debugging and the figure
    /// harness, costs memory on long runs).
    pub logging: bool,
}

impl Default for MediumConfig {
    fn default() -> Self {
        Self {
            noise_power: 1e-4,
            occupancy_integration: 16,
            noise_seed: 0x5eed,
            logging: false,
        }
    }
}

/// One logged slot: which tags reflected and what the reader received.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotLog {
    /// Indices of the tags that reflected in this slot.
    pub participants: Vec<usize>,
    /// The (leakage-removed, noisy) symbol the reader observed.
    pub symbol: Complex,
}

/// The simulated air interface.
#[derive(Debug, Clone)]
pub struct Medium {
    /// The channels in effect for the *current* slot (equal to
    /// `base_channels` unless dynamics are attached and have perturbed them).
    channels: Vec<Channel>,
    /// The scenario's slot-0 channels, the reference every dynamic slot
    /// starts from.
    base_channels: Vec<Channel>,
    leakage: CarrierLeakage,
    noise: AwgnSource,
    detector: PowerDetector,
    config: MediumConfig,
    /// Per-slot effects applied at slot boundaries (empty = static medium).
    dynamics: Vec<Arc<dyn ScenarioDynamics>>,
    /// Seed material for the dynamics streams.
    dynamics_seed: u64,
    /// Control-plane fault plan, if any (`None` = fault-free sessions).
    faults: Option<Arc<FaultPlan>>,
    /// Amplitude multiplier on the noise source for the current slot
    /// (`sqrt` of the dynamics' power scale; 1.0 when static).
    noise_amplitude_scale: f64,
    log: Vec<SlotLog>,
}

impl Medium {
    /// Creates a medium for a set of tag channels.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty channel set or invalid noise parameters.
    pub fn new(channels: Vec<Channel>, config: MediumConfig) -> SimResult<Self> {
        if channels.is_empty() {
            return Err(SimError::InvalidParameter("medium needs at least one tag"));
        }
        if config.occupancy_integration == 0 {
            return Err(SimError::InvalidParameter(
                "occupancy integration must be non-zero",
            ));
        }
        let noise = AwgnSource::new(config.noise_seed, config.noise_power)?;
        // Occupancy threshold: several times the post-integration noise power,
        // so empty slots are rarely mistaken for occupied ones while even a
        // weak single tag still trips the detector in good conditions.
        let integrated_noise = config.noise_power / config.occupancy_integration as f64;
        let detector = PowerDetector::new(integrated_noise * 9.0)?;
        Ok(Self {
            base_channels: channels.clone(),
            channels,
            leakage: CarrierLeakage::typical(),
            noise,
            detector,
            config,
            dynamics: Vec::new(),
            dynamics_seed: 0,
            faults: None,
            noise_amplitude_scale: 1.0,
            log: Vec::new(),
        })
    }

    /// Attaches per-slot dynamics to the medium.  `dynamics_seed` pins the
    /// dynamics' pseudorandom streams (drift directions, burst phases), so
    /// the same seed reproduces the same trajectory.
    ///
    /// Protocols drive the dynamics by calling [`Medium::begin_slot`] at slot
    /// boundaries; with no dynamics attached that call is free and the medium
    /// is bit-identical to a pre-dynamics one.
    #[must_use]
    pub fn with_dynamics(
        mut self,
        dynamics: Vec<Arc<dyn ScenarioDynamics>>,
        dynamics_seed: u64,
    ) -> Self {
        self.dynamics = dynamics;
        self.dynamics_seed = dynamics_seed;
        self
    }

    /// Starts slot `slot`: resets the per-slot channels/noise to the base
    /// state and applies every attached dynamics in order.  A no-op when no
    /// dynamics are attached, so static scenarios take this path for free.
    pub fn begin_slot(&mut self, slot: u64) {
        if self.dynamics.is_empty() {
            return;
        }
        self.channels.copy_from_slice(&self.base_channels);
        let mut noise_scale = 1.0f64;
        for (index, dynamics) in self.dynamics.iter().enumerate() {
            let stream_seed = SplitMix64::mix(self.dynamics_seed, 0xd1a_0001 + index as u64);
            let mut rng = Xoshiro256::seed_from_u64(SplitMix64::mix(stream_seed, slot));
            let mut view = SlotView {
                slot,
                channels: &mut self.channels,
                noise_scale: &mut noise_scale,
                stream_seed,
                rng: &mut rng,
            };
            dynamics.apply(&mut view);
        }
        self.noise_amplitude_scale = noise_scale.max(0.0).sqrt();
    }

    /// The attached dynamics (empty for a static medium).
    #[must_use]
    pub fn dynamics(&self) -> &[Arc<dyn ScenarioDynamics>] {
        &self.dynamics
    }

    /// Attaches a control-plane fault plan.  Protocols consult it through
    /// [`Medium::slot_faults`]; with no plan attached that call returns
    /// `None` and the medium is bit-identical to a pre-faults one.
    #[must_use]
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        if !plan.is_empty() {
            self.faults = Some(plan);
        }
        self
    }

    /// Whether a (non-empty) fault plan is attached.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The control-plane faults for `slot`, or `None` when no fault plan is
    /// attached.  Pure in the slot index: consulting the same slot twice
    /// yields identical faults.
    #[must_use]
    pub fn slot_faults(&self, slot: u64) -> Option<SlotFaults> {
        self.faults
            .as_ref()
            .map(|plan| plan.slot_faults(slot, self.channels.len()))
    }

    /// The effective noise power for the current slot (base noise times the
    /// dynamics' scale).
    #[must_use]
    pub fn slot_noise_power(&self) -> f64 {
        self.config.noise_power * self.noise_amplitude_scale * self.noise_amplitude_scale
    }

    /// One noise draw at the current slot's effective power.
    fn noise_sample(&mut self) -> Complex {
        let sample = self.noise.sample();
        if self.noise_amplitude_scale == 1.0 {
            sample
        } else {
            sample * self.noise_amplitude_scale
        }
    }

    /// The number of tags on this medium.
    #[must_use]
    pub fn num_tags(&self) -> usize {
        self.channels.len()
    }

    /// The per-tag channels (ground truth; protocols should *estimate* these
    /// rather than read them unless the experiment grants genie knowledge).
    #[must_use]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The configured noise power.
    #[must_use]
    pub fn noise_power(&self) -> f64 {
        self.config.noise_power
    }

    /// The carrier-leakage baseline (what a raw, uncorrected trace rides on).
    #[must_use]
    pub fn leakage(&self) -> CarrierLeakage {
        self.leakage
    }

    /// The slot log (empty unless logging was enabled).
    #[must_use]
    pub fn log(&self) -> &[SlotLog] {
        &self.log
    }

    fn check_bits(&self, bits: &[bool]) -> SimResult<()> {
        if bits.len() != self.channels.len() {
            return Err(SimError::Phy(backscatter_phy::PhyError::LengthMismatch {
                expected: self.channels.len(),
                actual: bits.len(),
            }));
        }
        Ok(())
    }

    /// The noiseless superposition of the reflections of the tags whose bit is
    /// `true` (no leakage).
    fn clean_symbol(&self, bits: &[bool]) -> Complex {
        self.channels
            .iter()
            .zip(bits)
            .filter(|(_, &b)| b)
            .map(|(c, _)| c.coefficient)
            .sum()
    }

    /// One received symbol with leakage removed and noise added — the quantity
    /// the Buzz decoders operate on.
    ///
    /// `bits[i]` is whether tag `i` reflects in this slot.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if `bits` does not cover every tag.
    pub fn observe(&mut self, bits: &[bool]) -> SimResult<Complex> {
        self.check_bits(bits)?;
        let symbol = self.clean_symbol(bits) + self.noise_sample();
        if self.config.logging {
            self.log.push(SlotLog {
                participants: bits
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .collect(),
                symbol,
            });
        }
        Ok(symbol)
    }

    /// Like [`Medium::observe`], but with the noise power scaled by
    /// `power_factor` for this one symbol — the hook fault plans use to model
    /// CRC-corrupting frame noise.  A factor of exactly 1 is draw-identical
    /// to a plain `observe` call, so fault-free slots stay byte-reproducible.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if `bits` does not cover every tag, or
    /// an invalid-parameter error for a non-finite or negative factor.
    pub fn observe_with_noise_factor(
        &mut self,
        bits: &[bool],
        power_factor: f64,
    ) -> SimResult<Complex> {
        if !power_factor.is_finite() || power_factor < 0.0 {
            return Err(SimError::InvalidParameter(
                "noise power factor must be finite and non-negative",
            ));
        }
        if power_factor == 1.0 {
            return self.observe(bits);
        }
        self.check_bits(bits)?;
        let symbol = self.clean_symbol(bits) + self.noise_sample() * power_factor.sqrt();
        if self.config.logging {
            self.log.push(SlotLog {
                participants: bits
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i)
                    .collect(),
                symbol,
            });
        }
        Ok(symbol)
    }

    /// One received symbol *including* the carrier-leakage baseline — what a
    /// raw USRP capture looks like before the reader subtracts the static
    /// environment (used by the Fig. 2/3 waveform reproductions).
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if `bits` does not cover every tag.
    pub fn observe_raw(&mut self, bits: &[bool]) -> SimResult<Complex> {
        Ok(self.observe(bits)? + self.leakage.baseline)
    }

    /// One received symbol where each tag reflects for only a *fraction* of
    /// the integration window (`weights[i] ∈ [0, 1]`).
    ///
    /// This models imperfect chip/symbol alignment: a tag whose clock is
    /// offset by a fraction `f` of the period contributes `(1 − f)` of its
    /// current chip and `f` of its previous chip to the reader's integrator.
    /// The synchronous CDMA baseline uses this to capture how residual offsets
    /// break Walsh-code orthogonality (the origin of its near-far problem).
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if `weights` does not cover every tag,
    /// or an invalid-parameter error if any weight is outside `[0, 1]`.
    pub fn observe_fractional(&mut self, weights: &[f64]) -> SimResult<Complex> {
        if weights.len() != self.channels.len() {
            return Err(SimError::Phy(backscatter_phy::PhyError::LengthMismatch {
                expected: self.channels.len(),
                actual: weights.len(),
            }));
        }
        if weights.iter().any(|w| !(0.0..=1.0).contains(w)) {
            return Err(SimError::InvalidParameter(
                "fractional reflection weights must be in [0, 1]",
            ));
        }
        let clean: Complex = self
            .channels
            .iter()
            .zip(weights)
            .map(|(c, &w)| c.coefficient * w)
            .sum();
        let noise = self.noise_sample();
        Ok(clean + noise)
    }

    /// Like [`Medium::observe_fractional`], but with the noise power scaled
    /// by `power_factor` for this one symbol (the CDMA baseline's hook for
    /// fault-plan frame noise).  A factor of exactly 1 is draw-identical to a
    /// plain `observe_fractional` call.
    ///
    /// # Errors
    ///
    /// As for [`Medium::observe_fractional`], plus an invalid-parameter error
    /// for a non-finite or negative factor.
    pub fn observe_fractional_with_noise_factor(
        &mut self,
        weights: &[f64],
        power_factor: f64,
    ) -> SimResult<Complex> {
        if !power_factor.is_finite() || power_factor < 0.0 {
            return Err(SimError::InvalidParameter(
                "noise power factor must be finite and non-negative",
            ));
        }
        if power_factor == 1.0 {
            return self.observe_fractional(weights);
        }
        if weights.len() != self.channels.len() {
            return Err(SimError::Phy(backscatter_phy::PhyError::LengthMismatch {
                expected: self.channels.len(),
                actual: weights.len(),
            }));
        }
        if weights.iter().any(|w| !(0.0..=1.0).contains(w)) {
            return Err(SimError::InvalidParameter(
                "fractional reflection weights must be in [0, 1]",
            ));
        }
        let clean: Complex = self
            .channels
            .iter()
            .zip(weights)
            .map(|(c, &w)| c.coefficient * w)
            .sum();
        Ok(clean + self.noise_sample() * power_factor.sqrt())
    }

    /// Observes a whole sequence of slots: `per_slot_bits[j][i]` is tag `i`'s
    /// bit in slot `j`.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if any slot does not cover every tag.
    pub fn observe_sequence(&mut self, per_slot_bits: &[Vec<bool>]) -> SimResult<Vec<Complex>> {
        per_slot_bits.iter().map(|b| self.observe(b)).collect()
    }

    /// The reader's empty/occupied decision for a slot, integrating over the
    /// slot duration (suppresses noise relative to a single symbol draw).
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error if `bits` does not cover every tag.
    pub fn observe_occupancy(&mut self, bits: &[bool]) -> SimResult<SlotObservation> {
        self.check_bits(bits)?;
        let clean = self.clean_symbol(bits);
        let n = self.config.occupancy_integration;
        // Average power over n independent looks at the same slot.
        let mean_power: f64 = (0..n)
            .map(|_| (clean + self.noise_sample()).norm_sqr())
            .sum::<f64>()
            / n as f64;
        // Subtract the expected noise contribution so the threshold compares
        // signal energy (matched to how a real reader calibrates on silence).
        let signal_power = (mean_power - self.config.noise_power).max(0.0);
        Ok(if signal_power > self.detector.threshold {
            SlotObservation::Occupied
        } else {
            SlotObservation::Empty
        })
    }

    /// The per-tag SNR in dB implied by this medium (channel power over noise
    /// power), mainly for labelling experiment conditions like Fig. 12.
    #[must_use]
    pub fn per_tag_snr_db(&self) -> Vec<f64> {
        self.channels
            .iter()
            .map(|c| c.snr_db(self.config.noise_power).unwrap_or(f64::INFINITY))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium_with(channels: &[(f64, f64)], noise_power: f64) -> Medium {
        let chans: Vec<Channel> = channels
            .iter()
            .map(|&(re, im)| Channel::from_coefficient(Complex::new(re, im)))
            .collect();
        Medium::new(
            chans,
            MediumConfig {
                noise_power,
                ..MediumConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_channel_set() {
        assert!(Medium::new(vec![], MediumConfig::default()).is_err());
        let cfg = MediumConfig {
            occupancy_integration: 0,
            ..MediumConfig::default()
        };
        assert!(Medium::new(vec![Channel::from_coefficient(Complex::ONE)], cfg).is_err());
    }

    #[test]
    fn observe_checks_bit_vector_length() {
        let mut m = medium_with(&[(1.0, 0.0), (0.5, 0.0)], 1e-6);
        assert!(m.observe(&[true]).is_err());
        assert!(m.observe(&[true, false, true]).is_err());
        assert!(m.observe(&[true, false]).is_ok());
    }

    #[test]
    fn noiseless_superposition_is_sum_of_channels() {
        let mut m = medium_with(&[(1.0, 0.0), (0.0, 0.5)], 0.0);
        let y = m.observe(&[true, true]).unwrap();
        assert!((y - Complex::new(1.0, 0.5)).abs() < 1e-12);
        let y0 = m.observe(&[false, false]).unwrap();
        assert!(y0.abs() < 1e-12);
    }

    #[test]
    fn raw_observation_includes_leakage() {
        let mut m = medium_with(&[(1.0, 0.0)], 0.0);
        let clean = m.observe(&[false]).unwrap();
        let raw = m.observe_raw(&[false]).unwrap();
        assert!((raw - clean - m.leakage().baseline).abs() < 1e-12);
    }

    #[test]
    fn occupancy_detection_distinguishes_silence_from_reflection() {
        let mut m = medium_with(&[(0.3, 0.0), (0.0, 0.2)], 1e-4);
        let mut false_occupied = 0;
        let mut missed = 0;
        for _ in 0..200 {
            if m.observe_occupancy(&[false, false]).unwrap() == SlotObservation::Occupied {
                false_occupied += 1;
            }
            if m.observe_occupancy(&[true, false]).unwrap() == SlotObservation::Empty {
                missed += 1;
            }
        }
        assert!(false_occupied <= 2, "false occupied: {false_occupied}");
        assert_eq!(missed, 0, "missed detections: {missed}");
    }

    #[test]
    fn fractional_observation_scales_contributions() {
        let mut m = medium_with(&[(1.0, 0.0), (0.0, 2.0)], 0.0);
        let y = m.observe_fractional(&[0.5, 0.25]).unwrap();
        assert!((y - Complex::new(0.5, 0.5)).abs() < 1e-12);
        assert!(m.observe_fractional(&[0.5]).is_err());
        assert!(m.observe_fractional(&[0.5, 1.5]).is_err());
        // Weights of exactly 0/1 reproduce the boolean observation.
        let y_bool = m.observe(&[true, false]).unwrap();
        let y_frac = m.observe_fractional(&[1.0, 0.0]).unwrap();
        assert!((y_bool - y_frac).abs() < 1e-12);
    }

    #[test]
    fn observe_sequence_matches_individual_observations() {
        let mut a = medium_with(&[(1.0, 0.0), (0.5, 0.5)], 1e-5);
        let mut b = medium_with(&[(1.0, 0.0), (0.5, 0.5)], 1e-5);
        let slots = vec![vec![true, false], vec![false, true], vec![true, true]];
        let seq = a.observe_sequence(&slots).unwrap();
        let indiv: Vec<Complex> = slots.iter().map(|s| b.observe(s).unwrap()).collect();
        assert_eq!(seq, indiv);
    }

    #[test]
    fn logging_records_participants() {
        let chans = vec![
            Channel::from_coefficient(Complex::ONE),
            Channel::from_coefficient(Complex::I),
        ];
        let mut m = Medium::new(
            chans,
            MediumConfig {
                logging: true,
                ..MediumConfig::default()
            },
        )
        .unwrap();
        m.observe(&[true, false]).unwrap();
        m.observe(&[true, true]).unwrap();
        assert_eq!(m.log().len(), 2);
        assert_eq!(m.log()[0].participants, vec![0]);
        assert_eq!(m.log()[1].participants, vec![0, 1]);
    }

    #[test]
    fn begin_slot_without_dynamics_is_a_no_op() {
        // The static path must be bit-identical whether or not begin_slot is
        // called — this is what keeps the paper scenarios byte-reproducible
        // after the dynamics hook was added.
        let mut plain = medium_with(&[(1.0, 0.0), (0.5, 0.2)], 1e-4);
        let mut hooked = medium_with(&[(1.0, 0.0), (0.5, 0.2)], 1e-4);
        for slot in 0..16u64 {
            hooked.begin_slot(slot);
            let a = plain.observe(&[true, slot % 2 == 0]).unwrap();
            let b = hooked.observe(&[true, slot % 2 == 0]).unwrap();
            assert_eq!(a, b);
            assert_eq!(hooked.slot_noise_power(), hooked.noise_power());
        }
    }

    #[test]
    fn dynamics_perturb_channels_and_noise_per_slot() {
        use crate::dynamics::{BurstyInterference, Mobility};

        let channels = vec![
            Channel::from_coefficient(Complex::ONE),
            Channel::from_coefficient(Complex::I),
        ];
        let dynamics: Vec<Arc<dyn crate::dynamics::ScenarioDynamics>> = vec![
            Arc::new(Mobility::new(0.1, 0.0).unwrap()),
            Arc::new(BurstyInterference::new(4, 2, 9.0).unwrap()),
        ];
        let mut m = Medium::new(channels.clone(), MediumConfig::default())
            .unwrap()
            .with_dynamics(dynamics, 77);

        // Slot 0: mobility leaves slot-0 channels at their base value.
        m.begin_slot(0);
        for (base, got) in channels.iter().zip(m.channels()) {
            assert!((got.coefficient - base.coefficient).abs() < 1e-12);
        }

        // Later slots rotate the channels; magnitudes survive (no wobble).
        m.begin_slot(40);
        let rotated = m.channels().to_vec();
        assert!(rotated
            .iter()
            .zip(&channels)
            .all(|(r, b)| (r.coefficient.abs() - b.coefficient.abs()).abs() < 1e-12));
        assert!(rotated
            .iter()
            .zip(&channels)
            .any(|(r, b)| (r.coefficient - b.coefficient).abs() > 1e-3));

        // Burst slots raise the effective noise power by exactly 9x.
        let mut saw_burst = false;
        let mut saw_quiet = false;
        for slot in 0..32 {
            m.begin_slot(slot);
            let ratio = m.slot_noise_power() / m.noise_power();
            if (ratio - 9.0).abs() < 1e-9 {
                saw_burst = true;
            } else {
                assert!((ratio - 1.0).abs() < 1e-9, "unexpected ratio {ratio}");
                saw_quiet = true;
            }
        }
        assert!(saw_burst && saw_quiet);

        // Every slot's state is a pure function of the slot index.
        m.begin_slot(40);
        assert_eq!(m.channels(), &rotated[..]);
    }

    #[test]
    fn noise_factor_scales_the_same_draw() {
        let mut plain = medium_with(&[(1.0, 0.0)], 1e-4);
        let mut scaled = medium_with(&[(1.0, 0.0)], 1e-4);
        // Silence observations expose the raw noise draw: a factor of 4 in
        // power is exactly 2x the amplitude of the identical seeded draw.
        let n = plain.observe(&[false]).unwrap();
        let boosted = scaled.observe_with_noise_factor(&[false], 4.0).unwrap();
        assert!((boosted - n * 2.0).abs() < 1e-12);
        // Factor 1 takes the plain path bit-for-bit.
        let a = plain.observe(&[true]).unwrap();
        let b = scaled.observe_with_noise_factor(&[true], 1.0).unwrap();
        assert_eq!(a, b);
        assert!(scaled.observe_with_noise_factor(&[true], -1.0).is_err());
        assert!(scaled
            .observe_with_noise_factor(&[true], f64::INFINITY)
            .is_err());
    }

    #[test]
    fn fault_plan_attaches_and_is_pure() {
        use crate::faults::{FaultPlan, ReaderRestart, SlotErasure};

        let m = medium_with(&[(1.0, 0.0), (0.5, 0.2)], 1e-4);
        assert!(!m.has_faults());
        assert!(m.slot_faults(3).is_none());

        // An empty plan is dropped, keeping the fault-free fast path.
        let empty =
            medium_with(&[(1.0, 0.0)], 1e-4).with_faults(Arc::new(FaultPlan::new(9, Vec::new())));
        assert!(!empty.has_faults());

        let plan = Arc::new(FaultPlan::new(
            42,
            vec![
                Arc::new(SlotErasure::new(0.5).unwrap()),
                Arc::new(ReaderRestart::new(6)),
            ],
        ));
        let m = medium_with(&[(1.0, 0.0), (0.5, 0.2)], 1e-4).with_faults(plan);
        assert!(m.has_faults());
        let first: Vec<_> = (0..16).map(|s| m.slot_faults(s).unwrap()).collect();
        let second: Vec<_> = (0..16).map(|s| m.slot_faults(s).unwrap()).collect();
        assert_eq!(first, second);
        assert!(first[6].reader_restart);
        assert!(first.iter().any(|f| f.collision_erased));
    }

    #[test]
    fn per_tag_snr_reflects_channel_strength() {
        let m = medium_with(&[(1.0, 0.0), (0.1, 0.0)], 1e-2);
        let snrs = m.per_tag_snr_db();
        assert!((snrs[0] - 20.0).abs() < 1e-9);
        assert!((snrs[1] - 0.0).abs() < 1e-9);
    }
}
