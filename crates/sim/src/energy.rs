//! Tag energy model.
//!
//! Fig. 13 of the paper compares the per-query energy drain of Buzz, TDMA and
//! CDMA by charging a large capacitor (`C = 0.1 F`) to a starting voltage
//! `V0 ∈ {3, 4, 5}` V, replying to 8800 queries, and measuring
//! `E = ½·C·(V0² − Vf²)`.
//!
//! The model here charges a tag for three things during a reply:
//!
//! 1. a fixed wake-up/command-decode cost per query,
//! 2. static active power while the radio front end and MCU are engaged in
//!    the reply (proportional to the time spent transmitting), and
//! 3. impedance-switching cost per transition of the antenna state (this is
//!    what makes Miller-4 and CDMA chipping expensive).
//!
//! All three scale with the square of the supply voltage, reflecting CMOS
//! dynamic power, which reproduces the upward trend across `V0` in Fig. 13.

use crate::{SimError, SimResult};

/// Per-tag energy cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Wake-up + command decode energy per query at the reference voltage, J.
    pub wakeup_j: f64,
    /// Static power while actively replying at the reference voltage, W.
    pub active_power_w: f64,
    /// Energy per antenna impedance transition at the reference voltage, J.
    pub per_transition_j: f64,
    /// Reference supply voltage for the constants above, V.
    pub reference_voltage_v: f64,
}

impl EnergyModel {
    /// Constants loosely calibrated to the Moo (MSP430-class MCU + backscatter
    /// front end) so that a TDMA reply to one query lands in the µJ range of
    /// Fig. 13.
    #[must_use]
    pub fn moo() -> Self {
        Self {
            wakeup_j: 0.4e-6,
            active_power_w: 1.5e-3,
            per_transition_j: 1.2e-9,
            reference_voltage_v: 3.0,
        }
    }

    /// Validates the constants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn validate(&self) -> SimResult<()> {
        let all = [
            self.wakeup_j,
            self.active_power_w,
            self.per_transition_j,
            self.reference_voltage_v,
        ];
        if all.iter().any(|v| !v.is_finite() || *v < 0.0) || self.reference_voltage_v == 0.0 {
            return Err(SimError::InvalidParameter(
                "energy model constants must be finite and non-negative",
            ));
        }
        Ok(())
    }

    /// Voltage scaling factor (`(V / Vref)²`).
    #[must_use]
    fn voltage_scale(&self, supply_v: f64) -> f64 {
        let r = supply_v / self.reference_voltage_v;
        r * r
    }

    /// The energy one reply costs, given what the tag transmitted.
    #[must_use]
    pub fn reply_energy_j(&self, profile: &TransmissionProfile, supply_v: f64) -> f64 {
        let scale = self.voltage_scale(supply_v);
        let raw = self.wakeup_j
            + self.active_power_w * profile.active_time_s
            + self.per_transition_j * profile.transitions as f64;
        raw * scale
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::moo()
    }
}

/// What a tag actually transmitted while answering one query, as seen by the
/// energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransmissionProfile {
    /// Time the tag spent actively replying (radio + MCU engaged), seconds.
    pub active_time_s: f64,
    /// Number of antenna impedance transitions performed.
    pub transitions: u64,
}

impl TransmissionProfile {
    /// A profile for transmitting `bits` bits at `bit_rate_bps` with a line
    /// code that performs `transitions_per_bit` impedance transitions per bit,
    /// repeated `repeats` times (e.g. the number of collision slots a Buzz tag
    /// participates in).
    #[must_use]
    pub fn for_bits(
        bits: usize,
        bit_rate_bps: f64,
        transitions_per_bit: f64,
        repeats: usize,
    ) -> Self {
        let per_message_s = if bit_rate_bps > 0.0 {
            bits as f64 / bit_rate_bps
        } else {
            0.0
        };
        Self {
            active_time_s: per_message_s * repeats as f64,
            transitions: (bits as f64 * transitions_per_bit * repeats as f64).round() as u64,
        }
    }

    /// Merges two profiles (e.g. identification phase + data phase).
    #[must_use]
    pub fn combined(&self, other: &TransmissionProfile) -> Self {
        Self {
            active_time_s: self.active_time_s + other.active_time_s,
            transitions: self.transitions + other.transitions,
        }
    }
}

/// The storage capacitor of a computational RFID.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagBattery {
    /// Capacitance in farads (the paper attaches a 0.1 F capacitor).
    pub capacitance_f: f64,
    /// Current voltage across the capacitor.
    pub voltage_v: f64,
    /// Total energy drained so far, J.
    pub consumed_j: f64,
}

impl TagBattery {
    /// Creates a battery charged to `voltage_v`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive capacitance or
    /// negative voltage.
    pub fn new(capacitance_f: f64, voltage_v: f64) -> SimResult<Self> {
        if !(capacitance_f > 0.0 && capacitance_f.is_finite()) {
            return Err(SimError::InvalidParameter("capacitance must be positive"));
        }
        if !(voltage_v >= 0.0 && voltage_v.is_finite()) {
            return Err(SimError::InvalidParameter("voltage must be non-negative"));
        }
        Ok(Self {
            capacitance_f,
            voltage_v,
            consumed_j: 0.0,
        })
    }

    /// The paper's measurement rig: a 0.1 F capacitor at the given starting
    /// voltage.
    ///
    /// # Errors
    ///
    /// Propagates [`TagBattery::new`] errors.
    pub fn paper_rig(starting_voltage_v: f64) -> SimResult<Self> {
        Self::new(0.1, starting_voltage_v)
    }

    /// Stored energy, `½·C·V²`, in joules.
    #[must_use]
    pub fn stored_j(&self) -> f64 {
        0.5 * self.capacitance_f * self.voltage_v * self.voltage_v
    }

    /// Drains `energy_j` joules, clamping at empty.  Returns the energy
    /// actually drained (less than requested only if the store ran dry).
    pub fn drain_j(&mut self, energy_j: f64) -> f64 {
        let drained = energy_j.max(0.0).min(self.stored_j());
        let remaining = self.stored_j() - drained;
        self.voltage_v = (2.0 * remaining / self.capacitance_f).sqrt();
        self.consumed_j += drained;
        drained
    }

    /// Harvests `energy_j` joules from the reader's carrier (charging the
    /// capacitor), capped at `max_voltage_v`.
    pub fn harvest_j(&mut self, energy_j: f64, max_voltage_v: f64) {
        let stored = self.stored_j() + energy_j.max(0.0);
        self.voltage_v = (2.0 * stored / self.capacitance_f)
            .sqrt()
            .min(max_voltage_v);
    }

    /// Whether the capacitor has fallen below the MCU's brown-out voltage
    /// (1.8 V for the MSP430) — the "tag runs out of power" case discussed in
    /// §6(d) of the paper.
    #[must_use]
    pub fn is_browned_out(&self) -> bool {
        self.voltage_v < 1.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_validation() {
        assert!(EnergyModel::moo().validate().is_ok());
        let mut m = EnergyModel::moo();
        m.active_power_w = -1.0;
        assert!(m.validate().is_err());
        let mut m = EnergyModel::moo();
        m.reference_voltage_v = 0.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn reply_energy_scales_with_voltage() {
        let model = EnergyModel::moo();
        let profile = TransmissionProfile::for_bits(37, 80_000.0, 1.5, 1);
        let e3 = model.reply_energy_j(&profile, 3.0);
        let e5 = model.reply_energy_j(&profile, 5.0);
        assert!(e5 > e3);
        assert!((e5 / e3 - 25.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn more_transitions_cost_more() {
        let model = EnergyModel::moo();
        // Same bits, FM0-style vs Miller-4-style transition counts.
        let fm0 = TransmissionProfile::for_bits(37, 80_000.0, 1.5, 1);
        let miller4 = TransmissionProfile::for_bits(37, 80_000.0, 8.0, 1);
        assert!(model.reply_energy_j(&miller4, 3.0) > model.reply_energy_j(&fm0, 3.0));
    }

    #[test]
    fn longer_transmissions_cost_more() {
        let model = EnergyModel::moo();
        let once = TransmissionProfile::for_bits(37, 80_000.0, 1.5, 1);
        let many = TransmissionProfile::for_bits(37, 80_000.0, 1.5, 16);
        assert!(model.reply_energy_j(&many, 3.0) > model.reply_energy_j(&once, 3.0));
    }

    #[test]
    fn tdma_reply_energy_is_in_microjoule_range() {
        // Sanity check against Fig. 13's axis (a few to a few tens of µJ).
        let model = EnergyModel::moo();
        let miller4 = TransmissionProfile::for_bits(37, 80_000.0, 8.0, 1);
        let e = model.reply_energy_j(&miller4, 3.0);
        assert!(e > 0.1e-6 && e < 50e-6, "e = {e}");
    }

    #[test]
    fn combined_profiles_add() {
        let a = TransmissionProfile::for_bits(10, 1000.0, 2.0, 1);
        let b = TransmissionProfile::for_bits(20, 1000.0, 2.0, 1);
        let c = a.combined(&b);
        assert!((c.active_time_s - 0.03).abs() < 1e-12);
        assert_eq!(c.transitions, 60);
    }

    #[test]
    fn zero_bit_rate_profile_is_empty_time() {
        let p = TransmissionProfile::for_bits(10, 0.0, 2.0, 1);
        assert_eq!(p.active_time_s, 0.0);
    }

    #[test]
    fn battery_validation_and_storage() {
        assert!(TagBattery::new(0.0, 3.0).is_err());
        assert!(TagBattery::new(0.1, -1.0).is_err());
        let b = TagBattery::paper_rig(3.0).unwrap();
        assert!((b.stored_j() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn drain_reduces_voltage_and_tracks_consumption() {
        let mut b = TagBattery::paper_rig(3.0).unwrap();
        let before = b.stored_j();
        let drained = b.drain_j(0.1);
        assert!((drained - 0.1).abs() < 1e-12);
        assert!((before - b.stored_j() - 0.1).abs() < 1e-9);
        assert!(b.voltage_v < 3.0);
        assert!((b.consumed_j - 0.1).abs() < 1e-12);
    }

    #[test]
    fn drain_clamps_at_empty() {
        let mut b = TagBattery::new(1e-6, 2.0).unwrap();
        let drained = b.drain_j(1.0);
        assert!(drained < 1.0);
        assert!(b.voltage_v < 1e-6);
        assert!(b.is_browned_out());
    }

    #[test]
    fn harvest_recharges_up_to_cap() {
        let mut b = TagBattery::new(0.1, 2.0).unwrap();
        b.harvest_j(10.0, 3.0);
        assert!((b.voltage_v - 3.0).abs() < 1e-12);
        assert!(!b.is_browned_out());
    }

    #[test]
    fn paper_measurement_formula_matches_consumed_energy() {
        // E = ½C(V0² − Vf²) must equal the sum of drained energies.
        let mut b = TagBattery::paper_rig(4.0).unwrap();
        let v0 = b.voltage_v;
        let mut total = 0.0;
        for _ in 0..100 {
            total += b.drain_j(5e-6);
        }
        let measured = 0.5 * b.capacitance_f * (v0 * v0 - b.voltage_v * b.voltage_v);
        assert!((measured - total).abs() < 1e-9);
    }
}
