//! Pluggable per-slot scenario dynamics.
//!
//! The paper's experiments keep the environment frozen while the compared
//! schemes run back-to-back, but real deployments are not static: carts move,
//! other radios burst, and tag populations mix strong and weak transmitters.
//! A [`ScenarioDynamics`] implementation captures one such time-varying
//! effect as a *pure function* of the slot index (plus deterministic seed
//! material), so dynamic scenarios keep the repo-wide reproducibility
//! contract: the same `(ScenarioConfig, dynamics, seed)` triple always
//! produces the same channel/noise trajectory, for every protocol.
//!
//! Dynamics are attached through [`crate::scenario::ScenarioBuilder`] and
//! applied by the [`crate::medium::Medium`] at slot boundaries
//! ([`crate::medium::Medium::begin_slot`]): each slot starts from the
//! scenario's *base* channels and noise floor, then every attached dynamics
//! perturbs that slot's view in order.  A scenario with no dynamics never
//! pays for the machinery — `begin_slot` is a no-op and the medium behaves
//! exactly as it did before dynamics existed.
//!
//! # Time-base caveat
//!
//! "Slot" is *protocol-local*: Buzz advances the dynamics once per
//! identification or collision slot (12.5 µs symbols), CDMA once per spread
//! bit period, and TDMA once per whole-message polling round, so one
//! dynamics instance describes
//! a per-slot-index perturbation sequence, not a wall-clock trajectory
//! shared across schemes.  Cross-scheme tables built over dynamic scenarios
//! compare each scheme against its own slot clock — calibrate rates
//! per-scheme (or keep them qualitative) before reading such a table as an
//! apples-to-apples wall-clock experiment.  Schemes simulated without a PHY
//! medium at all (Gen-2 FSA's analytic inventory model) never observe
//! dynamics; they serve as an unaffected control in the examples.

use core::fmt;

use backscatter_phy::channel::Channel;
use backscatter_phy::complex::Complex;
use backscatter_prng::{Rng64, SplitMix64, Xoshiro256};

use crate::{SimError, SimResult};

/// The per-slot view a [`ScenarioDynamics`] implementation perturbs.
///
/// `channels` starts each slot as a copy of the scenario's base channels and
/// `noise_scale` starts at `1.0`; dynamics mutate both in attachment order.
#[derive(Debug)]
pub struct SlotView<'a> {
    /// The slot index since the start of the protocol phase.
    pub slot: u64,
    /// Per-tag channel coefficients for this slot (pre-seeded with the base
    /// channels).
    pub channels: &'a mut [Channel],
    /// Multiplier on the medium's base noise power for this slot.
    pub noise_scale: &'a mut f64,
    /// A seed that is stable across every slot of one run for one attached
    /// dynamics instance — derive per-tag constants (drift directions, power
    /// offsets) from it so they do not get redrawn every slot.
    pub stream_seed: u64,
    /// A generator seeded per `(dynamics, slot)` for effects that *should*
    /// vary slot to slot (jitter, burst phases).
    pub rng: &'a mut Xoshiro256,
}

/// One composable time-varying effect on the shared medium.
///
/// Implementations must be deterministic: everything they do must derive
/// from `SlotView::slot`, `SlotView::stream_seed`, and `SlotView::rng` —
/// never from ambient state — so that scenario runs stay bit-reproducible.
pub trait ScenarioDynamics: fmt::Debug + Send + Sync {
    /// A short label for reports and debugging.
    fn name(&self) -> &'static str;

    /// Perturbs one slot's channels/noise in place.
    fn apply(&self, view: &mut SlotView<'_>);
}

/// Derives the per-tag constant seed stream dynamics implementations share.
fn tag_stream(stream_seed: u64, tag: usize) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(SplitMix64::mix(stream_seed, 0x7a9_0001 + tag as u64))
}

/// Per-slot channel drift: the cart (or the environment) is moving.
///
/// Each tag's channel phase rotates at a constant per-slot rate whose
/// magnitude and sign are drawn once per run from the dynamics stream seed,
/// and its amplitude takes a small per-slot fading wobble.  Over a data
/// phase this decorrelates the reader's identification-time channel
/// estimates from the truth, which is exactly the stress mobility puts on
/// Buzz's interference cancellation.
#[derive(Debug, Clone, Copy)]
pub struct Mobility {
    /// Maximum per-slot phase drift magnitude in radians (per tag rates are
    /// uniform in `[drift/2, drift]` with a random sign).
    pub max_phase_drift_rad_per_slot: f64,
    /// Peak-to-peak fractional amplitude wobble per slot (0 disables).
    pub amplitude_wobble: f64,
}

impl Mobility {
    /// A walking-pace default: ~0.02 rad of phase drift per 12.5 µs slot
    /// with a 5 % amplitude wobble.
    #[must_use]
    pub fn walking_pace() -> Self {
        Self {
            max_phase_drift_rad_per_slot: 0.02,
            amplitude_wobble: 0.05,
        }
    }

    /// Creates a mobility dynamics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-finite or negative
    /// rates, or a wobble outside `[0, 1)`.
    pub fn new(max_phase_drift_rad_per_slot: f64, amplitude_wobble: f64) -> SimResult<Self> {
        if !(max_phase_drift_rad_per_slot >= 0.0 && max_phase_drift_rad_per_slot.is_finite()) {
            return Err(SimError::InvalidParameter(
                "phase drift must be finite and non-negative",
            ));
        }
        if !(0.0..1.0).contains(&amplitude_wobble) {
            return Err(SimError::InvalidParameter(
                "amplitude wobble must be in [0, 1)",
            ));
        }
        Ok(Self {
            max_phase_drift_rad_per_slot,
            amplitude_wobble,
        })
    }
}

impl ScenarioDynamics for Mobility {
    fn name(&self) -> &'static str {
        "mobility"
    }

    fn apply(&self, view: &mut SlotView<'_>) {
        let slot = view.slot as f64;
        for (i, channel) in view.channels.iter_mut().enumerate() {
            let mut tag_rng = tag_stream(view.stream_seed, i);
            let sign = if tag_rng.next_bit() { 1.0 } else { -1.0 };
            let rate = self.max_phase_drift_rad_per_slot * (0.5 + 0.5 * tag_rng.next_f64()) * sign;
            let wobble = if self.amplitude_wobble > 0.0 {
                1.0 + self.amplitude_wobble * (view.rng.next_f64() - 0.5)
            } else {
                1.0
            };
            channel.coefficient *= Complex::from_polar(wobble, rate * slot);
        }
    }
}

/// On/off interference bursts from a co-located radio.
///
/// Time is divided into frames of `period_slots`; each frame carries one
/// burst of `burst_slots` slots whose offset within the frame is drawn
/// deterministically per frame.  During a burst the slot's noise power is
/// multiplied by `noise_multiplier`.
#[derive(Debug, Clone, Copy)]
pub struct BurstyInterference {
    /// Frame length in slots.
    pub period_slots: u64,
    /// Burst length in slots (≤ `period_slots`).
    pub burst_slots: u64,
    /// Noise-power multiplier while a burst is on (≥ 1).
    pub noise_multiplier: f64,
}

impl BurstyInterference {
    /// A default matching a duty-cycled 802.11 interferer: 3-slot bursts
    /// every 10 slots at 20× the noise floor.
    #[must_use]
    pub fn wifi_like() -> Self {
        Self {
            period_slots: 10,
            burst_slots: 3,
            noise_multiplier: 20.0,
        }
    }

    /// Creates a bursty-interference dynamics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a zero period, a burst
    /// longer than the period, or a multiplier below 1.
    pub fn new(period_slots: u64, burst_slots: u64, noise_multiplier: f64) -> SimResult<Self> {
        if period_slots == 0 {
            return Err(SimError::InvalidParameter("period must be non-zero"));
        }
        if burst_slots > period_slots {
            return Err(SimError::InvalidParameter(
                "burst cannot be longer than the period",
            ));
        }
        if !(noise_multiplier >= 1.0 && noise_multiplier.is_finite()) {
            return Err(SimError::InvalidParameter(
                "noise multiplier must be finite and at least 1",
            ));
        }
        Ok(Self {
            period_slots,
            burst_slots,
            noise_multiplier,
        })
    }

    /// Whether `slot` falls inside a burst for the given stream seed.
    #[must_use]
    pub fn is_burst_slot(&self, stream_seed: u64, slot: u64) -> bool {
        if self.burst_slots == 0 {
            return false;
        }
        let frame = slot / self.period_slots;
        let mut frame_rng = Xoshiro256::seed_from_u64(SplitMix64::mix(stream_seed, frame));
        let offset = frame_rng.next_bounded(self.period_slots);
        let pos = slot % self.period_slots;
        (pos + self.period_slots - offset) % self.period_slots < self.burst_slots
    }
}

impl ScenarioDynamics for BurstyInterference {
    fn name(&self) -> &'static str {
        "bursty-interference"
    }

    fn apply(&self, view: &mut SlotView<'_>) {
        if self.is_burst_slot(view.stream_seed, view.slot) {
            *view.noise_scale *= self.noise_multiplier;
        }
    }
}

/// A static near-far spread beyond what geometry already produces: each tag's
/// channel amplitude is attenuated by a per-tag draw from `[0, spread_db]`.
///
/// Slot-independent, but expressed as a dynamics so it composes with the
/// others (e.g. "heterogeneous powers *and* mobility") without another
/// scenario constructor.
#[derive(Debug, Clone, Copy)]
pub struct HeterogeneousTagPower {
    /// Maximum per-tag attenuation in dB.
    pub spread_db: f64,
}

impl HeterogeneousTagPower {
    /// Creates a heterogeneous-power dynamics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a negative or non-finite
    /// spread.
    pub fn new(spread_db: f64) -> SimResult<Self> {
        if !(spread_db >= 0.0 && spread_db.is_finite()) {
            return Err(SimError::InvalidParameter(
                "power spread must be finite and non-negative",
            ));
        }
        Ok(Self { spread_db })
    }
}

impl ScenarioDynamics for HeterogeneousTagPower {
    fn name(&self) -> &'static str {
        "heterogeneous-tag-power"
    }

    fn apply(&self, view: &mut SlotView<'_>) {
        for (i, channel) in view.channels.iter_mut().enumerate() {
            let mut tag_rng = tag_stream(view.stream_seed, i);
            let attenuation_db = self.spread_db * tag_rng.next_f64();
            let amplitude = 10f64.powf(-attenuation_db / 20.0);
            channel.coefficient = channel.coefficient * amplitude;
        }
    }
}

/// Tags arriving and departing mid-session: shoppers lifting items off a
/// shelf, cartons moving in and out of a reader's field.
///
/// Each tag cycles through its own presence schedule: per cycle of
/// `period_slots` it is *away* for `away_fraction` of the cycle, with a
/// per-tag phase (drawn once per run from the dynamics stream seed) so
/// departures desynchronize across the population.  While away, the tag's
/// channel coefficient is zeroed — its transmissions simply never reach the
/// reader, which is how an absent backscatter tag actually behaves (no
/// carrier power to reflect).  For Buzz this looks like participation slots
/// that arrive empty of the departed tag's signal; fixed-schedule protocols
/// lose the polls that land inside an absence window.
#[derive(Debug, Clone, Copy)]
pub struct TagChurn {
    /// Presence cycle length in slots.
    pub period_slots: u64,
    /// Fraction of each cycle a tag spends away, in `[0, 1)`.
    pub away_fraction: f64,
}

impl TagChurn {
    /// A retail-shelf default: each tag is away for a quarter of a 64-slot
    /// cycle.
    #[must_use]
    pub fn retail_shelf() -> Self {
        Self {
            period_slots: 64,
            away_fraction: 0.25,
        }
    }

    /// Creates a churn dynamics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a zero period or an away
    /// fraction outside `[0, 1)`.
    pub fn new(period_slots: u64, away_fraction: f64) -> SimResult<Self> {
        if period_slots == 0 {
            return Err(SimError::InvalidParameter("churn period must be non-zero"));
        }
        if !(0.0..1.0).contains(&away_fraction) {
            return Err(SimError::InvalidParameter(
                "away fraction must be in [0, 1)",
            ));
        }
        Ok(Self {
            period_slots,
            away_fraction,
        })
    }

    /// Whether `tag` is away (departed) during `slot` for the given stream
    /// seed.  Pure function of its arguments, so every protocol sees the
    /// same arrival/departure schedule for a given run.
    #[must_use]
    pub fn is_away(&self, stream_seed: u64, tag: usize, slot: u64) -> bool {
        let away_slots = (self.period_slots as f64 * self.away_fraction) as u64;
        if away_slots == 0 {
            return false;
        }
        let phase = tag_stream(stream_seed, tag).next_bounded(self.period_slots);
        (slot + phase) % self.period_slots < away_slots
    }
}

impl ScenarioDynamics for TagChurn {
    fn name(&self) -> &'static str {
        "tag-churn"
    }

    fn apply(&self, view: &mut SlotView<'_>) {
        for (tag, channel) in view.channels.iter_mut().enumerate() {
            if self.is_away(view.stream_seed, tag, view.slot) {
                channel.coefficient = Complex::ZERO;
            }
        }
    }
}

/// Temporally *correlated* multipath fading: a sum-of-sinusoids (Jakes-style)
/// channel whose value drifts smoothly from slot to slot instead of being
/// redrawn independently.
///
/// Each tag's channel is multiplied by
///
/// ```text
/// fade(t) = 1 + √((1 − los)/paths) · Σ_p (exp(i·(±ω_p·t + φ_p)) − exp(i·φ_p))
/// ```
///
/// where the per-path angular rates `ω_p ∈ [doppler/4, doppler]`, drift
/// signs, and phases `φ_p` are drawn once per run from the dynamics stream
/// seed.  The construction anchors `fade(0) = 1` exactly — the reader's
/// identification-time channel estimates start correct, matching every other
/// dynamics' slot-0 convention — and then wanders: the scattered paths
/// decohere from their slot-0 alignment until the composite reaches a
/// steady-state excursion energy of `2·(1 − los)` around the line-of-sight
/// component.  `los = 1` disables fading entirely; small `los` lets the
/// channel fade *through* deep nulls, which is the regime where estimates
/// slowly rot and Buzz's interference cancellation is stressed differently
/// from [`Mobility`]'s pure phase drift.  `fade` is a pure function of the
/// slot index, so runs stay bit-reproducible.
#[derive(Debug, Clone, Copy)]
pub struct CorrelatedFading {
    /// Maximum per-path angular rate in radians per slot (0 freezes the
    /// fading pattern at its slot-0 draw).
    pub doppler_rad_per_slot: f64,
    /// Number of scattering paths summed per tag (≥ 1; more paths deepen
    /// and smooth the fading distribution).
    pub paths: usize,
    /// Fraction of channel energy in the static line-of-sight component, in
    /// `[0, 1]`.
    pub line_of_sight: f64,
}

impl CorrelatedFading {
    /// An indoor-clutter default: 8 scattering paths at up to 0.05 rad per
    /// 12.5 µs slot around a 50 % line-of-sight component.
    #[must_use]
    pub fn indoor_clutter() -> Self {
        Self {
            doppler_rad_per_slot: 0.05,
            paths: 8,
            line_of_sight: 0.5,
        }
    }

    /// Creates a correlated-fading dynamics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a negative or non-finite
    /// doppler, zero paths, or a line-of-sight fraction outside `[0, 1]`.
    pub fn new(doppler_rad_per_slot: f64, paths: usize, line_of_sight: f64) -> SimResult<Self> {
        if !(doppler_rad_per_slot >= 0.0 && doppler_rad_per_slot.is_finite()) {
            return Err(SimError::InvalidParameter(
                "doppler must be finite and non-negative",
            ));
        }
        if paths == 0 {
            return Err(SimError::InvalidParameter("fading needs at least one path"));
        }
        if !(0.0..=1.0).contains(&line_of_sight) {
            return Err(SimError::InvalidParameter(
                "line-of-sight fraction must be in [0, 1]",
            ));
        }
        Ok(Self {
            doppler_rad_per_slot,
            paths,
            line_of_sight,
        })
    }

    /// The multiplicative fade of `tag` at `slot` — a pure function of its
    /// arguments, shared by every protocol run over the same stream seed,
    /// with `fade(·, ·, 0) = 1` exactly.
    #[must_use]
    pub fn fade(&self, stream_seed: u64, tag: usize, slot: u64) -> Complex {
        let mut tag_rng = tag_stream(stream_seed, tag);
        let scatter_amp = ((1.0 - self.line_of_sight) / self.paths as f64).sqrt();
        let mut fade = Complex::ONE;
        for _ in 0..self.paths {
            let rate = self.doppler_rad_per_slot * (0.25 + 0.75 * tag_rng.next_f64());
            let sign = if tag_rng.next_bit() { 1.0 } else { -1.0 };
            let phase = tag_rng.next_f64() * core::f64::consts::TAU;
            fade += Complex::from_polar(scatter_amp, sign * rate * slot as f64 + phase)
                - Complex::from_polar(scatter_amp, phase);
        }
        fade
    }
}

impl ScenarioDynamics for CorrelatedFading {
    fn name(&self) -> &'static str {
        "correlated-fading"
    }

    fn apply(&self, view: &mut SlotView<'_>) {
        for (tag, channel) in view.channels.iter_mut().enumerate() {
            channel.coefficient *= self.fade(view.stream_seed, tag, view.slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_channels() -> Vec<Channel> {
        vec![
            Channel::from_coefficient(Complex::new(1.0, 0.0)),
            Channel::from_coefficient(Complex::new(0.0, 0.5)),
            Channel::from_coefficient(Complex::new(-0.3, 0.4)),
        ]
    }

    fn apply_once(
        dynamics: &dyn ScenarioDynamics,
        slot: u64,
        stream_seed: u64,
    ) -> (Vec<Channel>, f64) {
        let mut channels = base_channels();
        let mut noise_scale = 1.0;
        let mut rng = Xoshiro256::seed_from_u64(SplitMix64::mix(stream_seed, slot));
        let mut view = SlotView {
            slot,
            channels: &mut channels,
            noise_scale: &mut noise_scale,
            stream_seed,
            rng: &mut rng,
        };
        dynamics.apply(&mut view);
        (channels, noise_scale)
    }

    #[test]
    fn constructors_validate() {
        assert!(Mobility::new(-0.1, 0.0).is_err());
        assert!(Mobility::new(0.1, 1.0).is_err());
        assert!(Mobility::new(0.1, 0.1).is_ok());
        assert!(BurstyInterference::new(0, 0, 2.0).is_err());
        assert!(BurstyInterference::new(4, 5, 2.0).is_err());
        assert!(BurstyInterference::new(4, 2, 0.5).is_err());
        assert!(BurstyInterference::new(4, 2, 2.0).is_ok());
        assert!(HeterogeneousTagPower::new(-1.0).is_err());
        assert!(HeterogeneousTagPower::new(12.0).is_ok());
    }

    #[test]
    fn mobility_is_deterministic_and_rotates_over_time() {
        let m = Mobility::new(0.05, 0.0).unwrap();
        let (a, _) = apply_once(&m, 40, 9);
        let (b, _) = apply_once(&m, 40, 9);
        assert_eq!(a, b);
        // Phase rotation preserves magnitude (wobble disabled) but moves the
        // coefficient as slots pass.
        let (later, _) = apply_once(&m, 400, 9);
        for ((base, at40), at400) in base_channels().iter().zip(&a).zip(&later) {
            assert!((at40.coefficient.abs() - base.coefficient.abs()).abs() < 1e-12);
            assert!((at400.coefficient - at40.coefficient).abs() > 1e-6);
        }
    }

    #[test]
    fn mobility_slot_zero_is_the_base_channel() {
        let m = Mobility::new(0.05, 0.0).unwrap();
        let (at0, _) = apply_once(&m, 0, 3);
        for (base, got) in base_channels().iter().zip(&at0) {
            assert!((got.coefficient - base.coefficient).abs() < 1e-12);
        }
    }

    #[test]
    fn bursts_hit_the_configured_duty_cycle() {
        let b = BurstyInterference::new(10, 3, 20.0).unwrap();
        let mut burst_slots = 0usize;
        let total = 10_000u64;
        for slot in 0..total {
            let (_, scale) = apply_once(&b, slot, 42);
            let in_burst = b.is_burst_slot(42, slot);
            assert_eq!(scale > 1.0, in_burst);
            if in_burst {
                assert!((scale - 20.0).abs() < 1e-12);
                burst_slots += 1;
            }
        }
        let duty = burst_slots as f64 / total as f64;
        assert!((duty - 0.3).abs() < 0.02, "duty = {duty}");
    }

    #[test]
    fn heterogeneous_power_is_static_across_slots() {
        let h = HeterogeneousTagPower::new(12.0).unwrap();
        let (a, scale_a) = apply_once(&h, 1, 7);
        let (b, scale_b) = apply_once(&h, 999, 7);
        assert_eq!(a, b, "attenuation must not be redrawn per slot");
        assert_eq!(scale_a, 1.0);
        assert_eq!(scale_b, 1.0);
        // At least one tag is attenuated, none is amplified.
        let base = base_channels();
        let mut attenuated = 0;
        for (orig, got) in base.iter().zip(&a) {
            assert!(got.coefficient.abs() <= orig.coefficient.abs() + 1e-12);
            if got.coefficient.abs() < orig.coefficient.abs() - 1e-9 {
                attenuated += 1;
            }
        }
        assert!(attenuated >= 1);
    }

    #[test]
    fn tag_churn_validates_and_hits_its_duty_cycle() {
        assert!(TagChurn::new(0, 0.2).is_err());
        assert!(TagChurn::new(8, 1.0).is_err());
        assert!(TagChurn::new(8, -0.1).is_err());
        let churn = TagChurn::new(32, 0.25).unwrap();
        let total = 32_000u64;
        for tag in 0..3 {
            let away = (0..total)
                .filter(|&slot| churn.is_away(9, tag, slot))
                .count();
            let duty = away as f64 / total as f64;
            assert!((duty - 0.25).abs() < 0.02, "tag {tag}: duty = {duty}");
        }
        // Zero away time is a strict no-op.
        let none = TagChurn::new(32, 0.0).unwrap();
        assert!((0..256).all(|slot| !none.is_away(9, 0, slot)));
    }

    #[test]
    fn tag_churn_zeros_departed_channels_and_is_deterministic() {
        let churn = TagChurn::new(4, 0.5).unwrap();
        let mut saw_away = false;
        let mut saw_present = false;
        for slot in 0..32 {
            let (a, scale_a) = apply_once(&churn, slot, 7);
            let (b, _) = apply_once(&churn, slot, 7);
            assert_eq!(a, b, "churn must be a pure function of the slot");
            assert_eq!(scale_a, 1.0, "churn does not touch the noise");
            for (tag, (got, base)) in a.iter().zip(base_channels()).enumerate() {
                if churn.is_away(7, tag, slot) {
                    assert_eq!(got.coefficient, Complex::ZERO);
                    saw_away = true;
                } else {
                    assert_eq!(got.coefficient, base.coefficient);
                    saw_present = true;
                }
            }
        }
        assert!(saw_away && saw_present);
    }

    #[test]
    fn tag_churn_departures_are_desynchronized() {
        // Per-tag phases must prevent the whole population from vanishing in
        // lockstep (at 25 % away, some tag should be present in every slot
        // of a long window for a handful of tags).
        let churn = TagChurn::new(64, 0.25).unwrap();
        for slot in 0..512u64 {
            let all_away = (0..8).all(|tag| churn.is_away(3, tag, slot));
            assert!(!all_away, "every tag away at slot {slot}");
        }
    }

    #[test]
    fn correlated_fading_validates_and_is_deterministic() {
        assert!(CorrelatedFading::new(-0.1, 4, 0.5).is_err());
        assert!(CorrelatedFading::new(0.05, 0, 0.5).is_err());
        assert!(CorrelatedFading::new(0.05, 4, 1.5).is_err());
        assert!(CorrelatedFading::new(0.05, 4, 0.5).is_ok());
        let f = CorrelatedFading::indoor_clutter();
        let (a, scale_a) = apply_once(&f, 123, 9);
        let (b, scale_b) = apply_once(&f, 123, 9);
        assert_eq!(a, b, "fading must be a pure function of the slot");
        assert_eq!(scale_a, 1.0, "fading does not touch the noise");
        assert_eq!(scale_b, 1.0);
    }

    #[test]
    fn correlated_fading_is_smooth_across_adjacent_slots() {
        // The point of *correlated* fading: adjacent slots move the channel
        // far less than distant slots, per tag, and full line-of-sight
        // disables fading entirely.
        let f = CorrelatedFading::new(0.05, 8, 0.3).unwrap();
        for tag in 0..4 {
            let mut adjacent = 0.0f64;
            let mut distant = 0.0f64;
            let samples = 200u64;
            for t in 0..samples {
                let here = f.fade(7, tag, t);
                adjacent += (f.fade(7, tag, t + 1) - here).abs();
                distant += (f.fade(7, tag, t + 401) - here).abs();
            }
            assert!(
                adjacent < distant / 4.0,
                "tag {tag}: adjacent drift {adjacent} vs distant {distant}"
            );
        }
        let frozen = CorrelatedFading::new(0.0, 8, 0.3).unwrap();
        assert_eq!(frozen.fade(7, 0, 0), frozen.fade(7, 0, 999));
        let los_only = CorrelatedFading::new(0.05, 8, 1.0).unwrap();
        for t in [0u64, 17, 400] {
            assert!((los_only.fade(7, 0, t) - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn correlated_fading_slot_zero_is_the_base_channel() {
        // The slot-0 convention every dynamics honours: the reader's
        // identification-time estimates start correct.
        let f = CorrelatedFading::indoor_clutter();
        for tag in 0..5 {
            assert!(
                (f.fade(11, tag, 0) - Complex::ONE).abs() < 1e-12,
                "tag {tag} fade(0) != 1"
            );
        }
        let (at0, _) = apply_once(&f, 0, 11);
        for (base, got) in base_channels().iter().zip(&at0) {
            assert!((got.coefficient - base.coefficient).abs() < 1e-12);
        }
    }

    #[test]
    fn correlated_fading_fades_through_nulls() {
        // Deep fades are what distinguish multipath fading from pure phase
        // drift: over a long window some slot must attenuate the channel
        // well below its base amplitude, and some slot must sit near it.
        let f = CorrelatedFading::new(0.05, 8, 0.2).unwrap();
        let mut min_mag = f64::INFINITY;
        let mut max_mag = 0.0f64;
        for t in 0..4_000u64 {
            let mag = f.fade(3, 1, t).abs();
            min_mag = min_mag.min(mag);
            max_mag = max_mag.max(mag);
        }
        assert!(min_mag < 0.35, "no deep fade seen: min |fade| = {min_mag}");
        assert!(
            max_mag > 0.9,
            "no constructive slot: max |fade| = {max_mag}"
        );
    }

    #[test]
    fn dynamics_compose_in_order() {
        let h = HeterogeneousTagPower::new(6.0).unwrap();
        let b = BurstyInterference::new(1, 1, 4.0).unwrap();
        let mut channels = base_channels();
        let mut noise_scale = 1.0;
        let mut rng = Xoshiro256::seed_from_u64(1);
        for dynamics in [&h as &dyn ScenarioDynamics, &b] {
            let mut view = SlotView {
                slot: 0,
                channels: &mut channels,
                noise_scale: &mut noise_scale,
                stream_seed: 5,
                rng: &mut rng,
            };
            dynamics.apply(&mut view);
        }
        assert!((noise_scale - 4.0).abs() < 1e-12);
        assert!(channels[0].coefficient.abs() < 1.0);
    }
}
