//! Deterministic fault injection for protocol sessions.
//!
//! Where [`crate::dynamics`] perturbs the *physical* layer (channels, noise),
//! a [`FaultPlan`] perturbs the *control* plane: slots the reader fails to
//! frame-sync on, downlink feedback that never reaches the tags, tags that
//! brown out and reset mid-transfer, CRC-corrupting frame noise, and the
//! reader process itself restarting at a chosen slot.  Every injector draws
//! from the same seeded PRNG family as the dynamics, so any failure a sweep
//! surfaces is replayable bit-for-bit from `(scenario seed, noise seed)`.
//!
//! The plan is deliberately *pure*: [`FaultPlan::slot_faults`] is a function
//! of the slot index alone (no interior mutability), so protocols may consult
//! the same slot several times (e.g. once for the uplink and once for the
//! feedback decision) and replays across thread counts stay byte-identical.

use std::fmt;
use std::sync::Arc;

use backscatter_prng::{Rng64, SplitMix64, Xoshiro256};

use crate::{SimError, SimResult};

/// Per-injector stream salt, distinct from the dynamics salt (`0xd1a_0001`)
/// so a fault plan never correlates with co-attached dynamics.
const FAULT_STREAM_SALT: u64 = 0xfa17_0001;

/// Per-tag stream salt within an injector stream.
const TAG_STREAM_SALT: u64 = 0x7a9_1001;

/// The control-plane faults in effect for one slot, produced by
/// [`FaultPlan::slot_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlotFaults {
    /// The reader lost frame sync on this collision slot: tags transmit (and
    /// spend energy) but the reader discards the observation.  Singleton
    /// polls (TDMA-style, one tag addressed per slot) resynchronize on the
    /// preamble and are unaffected.
    pub collision_erased: bool,
    /// The downlink feedback sent at this slot (ACK / extra-slot request /
    /// poll command) is lost or corrupted and no tag acts on it.
    pub feedback_lost: bool,
    /// Multiplier (≥ 1) on the noise power for this slot's observations —
    /// CRC-corrupting frame noise.
    pub noise_power_factor: f64,
    /// The reader process restarts at this slot: all undecoded session RAM
    /// is lost unless the protocol checkpoints.
    pub reader_restart: bool,
    /// Tags (by index) that reset at this slot and stay dark for the rest of
    /// the session.
    pub tags_reset: Vec<usize>,
}

impl SlotFaults {
    /// A fault-free slot.
    #[must_use]
    pub fn none() -> Self {
        Self {
            collision_erased: false,
            feedback_lost: false,
            noise_power_factor: 1.0,
            reader_restart: false,
            tags_reset: Vec::new(),
        }
    }

    /// Whether this slot carries any fault at all.
    #[must_use]
    pub fn any(&self) -> bool {
        self.collision_erased
            || self.feedback_lost
            || self.noise_power_factor != 1.0
            || self.reader_restart
            || !self.tags_reset.is_empty()
    }
}

impl Default for SlotFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// The view handed to each [`FaultInjector`] for one slot, mirroring
/// [`crate::dynamics::SlotView`].
pub struct FaultView<'a> {
    /// The slot index (global across the session).
    pub slot: u64,
    /// Number of tags in the scenario (for per-tag faults).
    pub num_tags: usize,
    /// The injector's session-constant stream seed; derive per-frame or
    /// per-tag sub-streams from it with [`tag_stream`] or
    /// [`backscatter_prng::SplitMix64::mix`].
    pub stream_seed: u64,
    /// A per-(injector, slot) PRNG: identical slot indices always see
    /// identical draws, regardless of visit order or repetition.
    pub rng: &'a mut Xoshiro256,
    /// The fault flags to fill in.
    pub faults: &'a mut SlotFaults,
}

/// One seeded control-plane fault source, composable into a [`FaultPlan`].
pub trait FaultInjector: fmt::Debug + Send + Sync {
    /// A short stable name (for reports and logs).
    fn name(&self) -> &'static str;
    /// Applies this injector's faults for the view's slot.
    fn apply(&self, view: &mut FaultView<'_>);
}

/// A deterministic per-tag stream within an injector stream: tag-level
/// decisions (does tag `t` drop out, and when) must not depend on how many
/// slots have been visited so far.
#[must_use]
pub fn tag_stream(stream_seed: u64, tag: usize) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(SplitMix64::mix(stream_seed, TAG_STREAM_SALT + tag as u64))
}

/// A composed, seeded set of [`FaultInjector`]s.
///
/// `slot_faults` is pure: the same `(plan seed, slot, num_tags)` always
/// produces the same [`SlotFaults`], so the plan can be shared (`Arc`) across
/// threads and consulted repeatedly without drift.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    injectors: Vec<Arc<dyn FaultInjector>>,
}

impl FaultPlan {
    /// Creates a plan over `injectors` seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64, injectors: Vec<Arc<dyn FaultInjector>>) -> Self {
        Self { seed, injectors }
    }

    /// The plan's injectors.
    #[must_use]
    pub fn injectors(&self) -> &[Arc<dyn FaultInjector>] {
        &self.injectors
    }

    /// Whether the plan contains any injector.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injectors.is_empty()
    }

    /// The faults in effect for `slot`, given `num_tags` tags.
    #[must_use]
    pub fn slot_faults(&self, slot: u64, num_tags: usize) -> SlotFaults {
        let mut faults = SlotFaults::none();
        for (index, injector) in self.injectors.iter().enumerate() {
            let stream_seed = SplitMix64::mix(self.seed, FAULT_STREAM_SALT + index as u64);
            let mut rng = Xoshiro256::seed_from_u64(SplitMix64::mix(stream_seed, slot));
            let mut view = FaultView {
                slot,
                num_tags,
                stream_seed,
                rng: &mut rng,
                faults: &mut faults,
            };
            injector.apply(&mut view);
        }
        faults.tags_reset.sort_unstable();
        faults.tags_reset.dedup();
        faults
    }
}

/// Independent per-slot frame-sync loss on collision slots: each slot is
/// erased with probability `probability`.
#[derive(Debug, Clone, Copy)]
pub struct SlotErasure {
    probability: f64,
}

impl SlotErasure {
    /// Creates an erasure source with per-slot probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error for a probability outside `[0, 1]`.
    pub fn new(probability: f64) -> SimResult<Self> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(SimError::InvalidParameter(
                "erasure probability must be in [0, 1]",
            ));
        }
        Ok(Self { probability })
    }
}

impl FaultInjector for SlotErasure {
    fn name(&self) -> &'static str {
        "slot-erasure"
    }

    fn apply(&self, view: &mut FaultView<'_>) {
        if view.rng.next_f64() < self.probability {
            view.faults.collision_erased = true;
        }
    }
}

/// Periodic bursts of consecutive erased slots, phase-randomized per frame in
/// the style of [`crate::dynamics::BurstyInterference`]: each
/// `period_slots`-slot frame contains one run of `burst_slots` erased slots
/// at a frame-seeded offset.
#[derive(Debug, Clone, Copy)]
pub struct BurstSlotLoss {
    period_slots: u64,
    burst_slots: u64,
}

impl BurstSlotLoss {
    /// Creates a bursty erasure source.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < burst_slots <= period_slots`.
    pub fn new(period_slots: u64, burst_slots: u64) -> SimResult<Self> {
        if period_slots == 0 || burst_slots == 0 || burst_slots > period_slots {
            return Err(SimError::InvalidParameter(
                "burst loss needs 0 < burst_slots <= period_slots",
            ));
        }
        Ok(Self {
            period_slots,
            burst_slots,
        })
    }
}

impl FaultInjector for BurstSlotLoss {
    fn name(&self) -> &'static str {
        "burst-slot-loss"
    }

    fn apply(&self, view: &mut FaultView<'_>) {
        let frame = view.slot / self.period_slots;
        let pos = view.slot % self.period_slots;
        let mut frame_rng = Xoshiro256::seed_from_u64(SplitMix64::mix(view.stream_seed, frame));
        let offset = frame_rng.next_bounded(self.period_slots);
        if (pos + self.period_slots - offset) % self.period_slots < self.burst_slots {
            view.faults.collision_erased = true;
        }
    }
}

/// Independent loss of the downlink feedback sent at a slot (ACKs, extra-slot
/// requests, poll commands).
#[derive(Debug, Clone, Copy)]
pub struct FeedbackLoss {
    probability: f64,
}

impl FeedbackLoss {
    /// Creates a feedback-loss source with per-slot probability in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error for a probability outside `[0, 1]`.
    pub fn new(probability: f64) -> SimResult<Self> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(SimError::InvalidParameter(
                "feedback loss probability must be in [0, 1]",
            ));
        }
        Ok(Self { probability })
    }
}

impl FaultInjector for FeedbackLoss {
    fn name(&self) -> &'static str {
        "feedback-loss"
    }

    fn apply(&self, view: &mut FaultView<'_>) {
        // Burn one draw after the decision so co-resident injectors never see
        // correlated streams even if this one grows more draws later.
        if view.rng.next_f64() < self.probability {
            view.faults.feedback_lost = true;
        }
    }
}

/// CRC-corrupting frame noise: with probability `probability` a slot's
/// observations see `power_factor` times the nominal noise power.
#[derive(Debug, Clone, Copy)]
pub struct FrameNoise {
    probability: f64,
    power_factor: f64,
}

impl FrameNoise {
    /// Creates a frame-noise source.
    ///
    /// # Errors
    ///
    /// Returns an error for a probability outside `[0, 1]` or a power factor
    /// below 1.
    pub fn new(probability: f64, power_factor: f64) -> SimResult<Self> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(SimError::InvalidParameter(
                "frame noise probability must be in [0, 1]",
            ));
        }
        if !power_factor.is_finite() || power_factor < 1.0 {
            return Err(SimError::InvalidParameter(
                "frame noise power factor must be >= 1",
            ));
        }
        Ok(Self {
            probability,
            power_factor,
        })
    }
}

impl FaultInjector for FrameNoise {
    fn name(&self) -> &'static str {
        "frame-noise"
    }

    fn apply(&self, view: &mut FaultView<'_>) {
        if view.rng.next_f64() < self.probability {
            view.faults.noise_power_factor = view.faults.noise_power_factor.max(self.power_factor);
        }
    }
}

/// Mid-transfer tag reset/dropout: each tag independently browns out with
/// probability `probability`, at a slot drawn uniformly from
/// `[1, horizon_slots]`.  A reset tag stays dark for the rest of the session.
#[derive(Debug, Clone, Copy)]
pub struct TagDropout {
    probability: f64,
    horizon_slots: u64,
}

impl TagDropout {
    /// Creates a dropout source.
    ///
    /// # Errors
    ///
    /// Returns an error for a probability outside `[0, 1]` or a zero horizon.
    pub fn new(probability: f64, horizon_slots: u64) -> SimResult<Self> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(SimError::InvalidParameter(
                "dropout probability must be in [0, 1]",
            ));
        }
        if horizon_slots == 0 {
            return Err(SimError::InvalidParameter(
                "dropout horizon must be non-zero",
            ));
        }
        Ok(Self {
            probability,
            horizon_slots,
        })
    }
}

impl FaultInjector for TagDropout {
    fn name(&self) -> &'static str {
        "tag-dropout"
    }

    fn apply(&self, view: &mut FaultView<'_>) {
        // Per-tag decisions come from per-tag streams keyed on the
        // session-constant stream seed, so the drop schedule is a pure
        // function of the plan seed — not of the slots visited so far.
        for tag in 0..view.num_tags {
            let mut rng = tag_stream(view.stream_seed, tag);
            if rng.next_f64() >= self.probability {
                continue;
            }
            let reset_slot = 1 + rng.next_bounded(self.horizon_slots);
            if reset_slot == view.slot {
                view.faults.tags_reset.push(tag);
            }
        }
    }
}

/// Deterministic reader restart at a chosen slot: session RAM is lost there
/// unless the protocol checkpoints its decoder state.
#[derive(Debug, Clone, Copy)]
pub struct ReaderRestart {
    at_slot: u64,
}

impl ReaderRestart {
    /// Creates a restart at `at_slot`.
    #[must_use]
    pub fn new(at_slot: u64) -> Self {
        Self { at_slot }
    }
}

impl FaultInjector for ReaderRestart {
    fn name(&self) -> &'static str {
        "reader-restart"
    }

    fn apply(&self, view: &mut FaultView<'_>) {
        if view.slot == self.at_slot {
            view.faults.reader_restart = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(injectors: Vec<Arc<dyn FaultInjector>>) -> FaultPlan {
        FaultPlan::new(0xbadc0de, injectors)
    }

    #[test]
    fn constructors_validate_parameters() {
        assert!(SlotErasure::new(-0.1).is_err());
        assert!(SlotErasure::new(1.1).is_err());
        assert!(BurstSlotLoss::new(0, 1).is_err());
        assert!(BurstSlotLoss::new(4, 5).is_err());
        assert!(FeedbackLoss::new(2.0).is_err());
        assert!(FrameNoise::new(0.5, 0.5).is_err());
        assert!(FrameNoise::new(1.5, 2.0).is_err());
        assert!(TagDropout::new(0.5, 0).is_err());
    }

    #[test]
    fn slot_faults_is_pure_and_order_independent() {
        let p = plan(vec![
            Arc::new(SlotErasure::new(0.4).unwrap()),
            Arc::new(FeedbackLoss::new(0.3).unwrap()),
            Arc::new(FrameNoise::new(0.3, 16.0).unwrap()),
            Arc::new(TagDropout::new(0.5, 32).unwrap()),
        ]);
        let forward: Vec<SlotFaults> = (0..64).map(|s| p.slot_faults(s, 4)).collect();
        let backward: Vec<SlotFaults> = (0..64).rev().map(|s| p.slot_faults(s, 4)).collect();
        for (slot, faults) in forward.iter().enumerate() {
            assert_eq!(faults, &backward[63 - slot]);
            // Re-consulting the same slot is identical too.
            assert_eq!(faults, &p.slot_faults(slot as u64, 4));
        }
        // Some slot actually carries each kind of fault at these rates.
        assert!(forward.iter().any(|f| f.collision_erased));
        assert!(forward.iter().any(|f| f.feedback_lost));
        assert!(forward.iter().any(|f| f.noise_power_factor > 1.0));
        assert!(forward.iter().any(|f| !f.tags_reset.is_empty()));
    }

    #[test]
    fn different_seeds_give_different_erasure_patterns() {
        let erasures = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::new(seed, vec![Arc::new(SlotErasure::new(0.5).unwrap())]);
            (0..64)
                .map(|s| p.slot_faults(s, 1).collision_erased)
                .collect()
        };
        assert_ne!(erasures(1), erasures(2));
    }

    #[test]
    fn burst_loss_erases_exactly_burst_slots_per_frame() {
        let p = plan(vec![Arc::new(BurstSlotLoss::new(8, 3).unwrap())]);
        for frame in 0..8u64 {
            let erased = (0..8)
                .filter(|pos| p.slot_faults(frame * 8 + pos, 1).collision_erased)
                .count();
            assert_eq!(erased, 3, "frame {frame}");
        }
    }

    #[test]
    fn dropout_schedule_is_per_tag_and_sticky_to_one_slot() {
        let p = plan(vec![Arc::new(TagDropout::new(1.0, 16).unwrap())]);
        let mut reset_slots = [None; 5];
        for slot in 0..=16u64 {
            for &tag in &p.slot_faults(slot, 5).tags_reset {
                assert!(reset_slots[tag].is_none(), "tag {tag} reset twice");
                reset_slots[tag] = Some(slot);
            }
        }
        // probability 1.0 => every tag resets somewhere in [1, horizon].
        for (tag, slot) in reset_slots.iter().enumerate() {
            let slot = slot.unwrap_or_else(|| panic!("tag {tag} never reset"));
            assert!((1..=16).contains(&slot));
        }
    }

    #[test]
    fn reader_restart_fires_only_at_its_slot() {
        let p = plan(vec![Arc::new(ReaderRestart::new(7))]);
        for slot in 0..32u64 {
            assert_eq!(p.slot_faults(slot, 1).reader_restart, slot == 7);
        }
    }

    #[test]
    fn empty_plan_is_fault_free() {
        let p = plan(vec![]);
        assert!(p.is_empty());
        for slot in 0..16u64 {
            let f = p.slot_faults(slot, 3);
            assert!(!f.any());
            assert_eq!(f, SlotFaults::none());
        }
    }

    #[test]
    fn injector_names_are_stable() {
        let named: Vec<(&str, Arc<dyn FaultInjector>)> = vec![
            ("slot-erasure", Arc::new(SlotErasure::new(0.1).unwrap())),
            (
                "burst-slot-loss",
                Arc::new(BurstSlotLoss::new(4, 1).unwrap()),
            ),
            ("feedback-loss", Arc::new(FeedbackLoss::new(0.1).unwrap())),
            ("frame-noise", Arc::new(FrameNoise::new(0.1, 4.0).unwrap())),
            ("tag-dropout", Arc::new(TagDropout::new(0.1, 8).unwrap())),
            ("reader-restart", Arc::new(ReaderRestart::new(3))),
        ];
        for (expect, injector) in named {
            assert_eq!(injector.name(), expect);
        }
    }
}
