//! The warehouse epoch loop and the aggregate fleet headline.
//!
//! One fleet run is a sequence of *epochs*.  In each epoch the tags present
//! on the floor (per the population's churn hash) are shuffled with a seeded
//! permutation and dealt into cells of exactly `cell_k` tags; reader `i`
//! runs one session over cell `i` through the shared [`Protocol`] trait.
//! Planning (who reads whom, which messages are offered) and committing
//! (which deliveries clear pending state) are serial and reader-ordered;
//! only the physics — the sessions themselves — runs on the work-stealing
//! executor.  Since a session is a pure function of its plan, the committed
//! state and every reported number are byte-identical for any `threads`.
//!
//! Reader time is simulated air time: reader `r`'s clock starts at
//! `r * stagger_ms` (staggered power-up) and advances by each session's
//! `wall_time_ms`.  The [`FleetOutcome`] merges all session intervals
//! event-ordered to report fleet-level concurrency and utilization, plus the
//! headline: total delivered msgs/s, p50/p99 session latency, and energy per
//! delivered message.  Host-side compute time is captured per session
//! (`SessionRecord::host_ms`) for profiling but excluded from equality, so
//! the determinism contract stays exact.

use backscatter_prng::{Rng64, SplitMix64, Xoshiro256};
use backscatter_sim::{PersistentTag, Scenario};
use buzz::session::{Protocol, SessionOutcome};

use crate::executor::work_steal_map;
use crate::population::Population;
use crate::{FleetError, FleetResult};

/// Stream salt for the per-epoch assignment shuffle.
const ASSIGN_STREAM: u64 = 0xa551_6e00;
/// Stream salt for per-session scenario seeds.
const SCENARIO_STREAM: u64 = 0x5ce0_a10a;
/// Stream salt for per-session noise realizations.
const NOISE_STREAM: u64 = 0x0150_fade;

/// Configuration for one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Readers on the warehouse floor.
    pub readers: usize,
    /// Tags in the shared population.
    pub population: usize,
    /// Tags per session cell (every session sees exactly this many).
    pub cell_k: usize,
    /// Epochs (inventory rounds) to run.
    pub epochs: usize,
    /// Master seed; everything in the run derives from it.
    pub seed: u64,
    /// Message length in bits.
    pub message_bits: usize,
    /// Probability a tag is off the floor in any given epoch (`[0, 1)`).
    pub away_fraction: f64,
    /// Failed sessions a message survives before it expires as lost.
    pub max_carry: usize,
    /// Power-up stagger between consecutive readers, milliseconds.
    pub stagger_ms: f64,
    /// Global id space the population's ids are drawn from.
    pub global_id_space: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            readers: 50,
            population: 2_500,
            cell_k: 16,
            epochs: 2,
            seed: 2012,
            message_bits: 32,
            away_fraction: 0.1,
            max_carry: 2,
            stagger_ms: 2.0,
            global_id_space: 1 << 32,
        }
    }
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] when a field is outside its
    /// valid domain.
    pub fn validate(&self) -> FleetResult<()> {
        if self.readers == 0 {
            return Err(FleetError::InvalidParameter(
                "fleet needs at least one reader",
            ));
        }
        if self.cell_k == 0 {
            return Err(FleetError::InvalidParameter(
                "session cells must hold at least one tag",
            ));
        }
        if self.population < self.cell_k {
            return Err(FleetError::InvalidParameter(
                "population must fill at least one session cell",
            ));
        }
        if self.epochs == 0 {
            return Err(FleetError::InvalidParameter(
                "fleet runs need at least one epoch",
            ));
        }
        if self.message_bits == 0 {
            return Err(FleetError::InvalidParameter("messages must be non-empty"));
        }
        if !(0.0..1.0).contains(&self.away_fraction) {
            return Err(FleetError::InvalidParameter(
                "away fraction must be in [0, 1)",
            ));
        }
        if !self.stagger_ms.is_finite() || self.stagger_ms < 0.0 {
            return Err(FleetError::InvalidParameter(
                "reader stagger must be finite and non-negative",
            ));
        }
        if self.global_id_space < self.population as u64 {
            return Err(FleetError::InvalidParameter(
                "global id space must be at least the population size",
            ));
        }
        Ok(())
    }
}

/// One completed session inside a fleet run.
///
/// `PartialEq` deliberately ignores [`host_ms`](Self::host_ms): host compute
/// time is real wall-clock profiling data and would otherwise break the
/// byte-identical `threads = N` contract.
#[derive(Debug, Clone)]
pub struct SessionRecord {
    /// The reader that ran the session.
    pub reader: usize,
    /// The epoch the session belonged to.
    pub epoch: usize,
    /// Global ids of the tags in the session's cell, scenario tag order.
    pub tag_ids: Vec<u64>,
    /// Session start on the reader's simulated clock, milliseconds.
    pub start_ms: f64,
    /// Session end on the reader's simulated clock, milliseconds.
    pub end_ms: f64,
    /// The protocol outcome.
    pub outcome: SessionOutcome,
    /// Delivery verdict per cell tag (attributed, or the deterministic
    /// first-`delivered` fallback when the scheme cannot attribute).
    pub delivered_flags: Vec<bool>,
    /// Host compute time spent running this session, milliseconds.
    /// Profiling only — excluded from equality and from every deterministic
    /// aggregate.
    pub host_ms: f64,
}

impl PartialEq for SessionRecord {
    fn eq(&self, other: &Self) -> bool {
        self.reader == other.reader
            && self.epoch == other.epoch
            && self.tag_ids == other.tag_ids
            && self.start_ms == other.start_ms
            && self.end_ms == other.end_ms
            && self.outcome == other.outcome
            && self.delivered_flags == other.delivered_flags
    }
}

/// Aggregate outcome of one fleet run.
///
/// Float fields compare exactly, extending the repo's bit-identical
/// determinism contract to fleet scale (host time is kept out of the
/// records' equality for the same reason).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The scheme that ran the fleet.
    pub scheme: String,
    /// Readers configured.
    pub readers: usize,
    /// Population size.
    pub population: usize,
    /// Epochs run.
    pub epochs: usize,
    /// Sessions completed.
    pub sessions: usize,
    /// Messages offered by the population across the run.
    pub offered: usize,
    /// Messages delivered.
    pub delivered: usize,
    /// Messages lost (expired past their carry budget).
    pub lost: usize,
    /// Messages still pending at the end of the run.
    pub carried_over: usize,
    /// Simulated time from the first session start to the last session end,
    /// milliseconds.
    pub makespan_ms: f64,
    /// Fleet throughput: delivered messages per second of makespan.
    pub total_msgs_per_s: f64,
    /// Median session latency (simulated air time), milliseconds.
    pub p50_session_ms: f64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_session_ms: f64,
    /// Tag energy spent per delivered message, joules (0 when the scheme
    /// does not account energy or nothing was delivered).
    pub energy_per_delivered_j: f64,
    /// Per-reader utilization: fraction of the makespan each reader spent
    /// in a session (readers that never ran report 0).
    pub utilization: Vec<f64>,
    /// Mean of [`utilization`](Self::utilization).
    pub mean_utilization: f64,
    /// Peak number of simultaneously active sessions, from the event-ordered
    /// interval merge.
    pub peak_concurrent_sessions: usize,
    /// Every session, in deterministic (epoch, reader) order.
    pub records: Vec<SessionRecord>,
}

impl FleetOutcome {
    /// The conservation invariant: every offered message was delivered,
    /// lost, or is still pending.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.offered == self.delivered + self.lost + self.carried_over
    }

    /// Total host compute time across all sessions, milliseconds
    /// (profiling only; varies run to run).
    #[must_use]
    pub fn total_host_ms(&self) -> f64 {
        self.records.iter().map(|r| r.host_ms).sum()
    }
}

/// The per-session plan the planner hands the executor: everything a worker
/// needs to run one session without touching shared state.
struct SessionPlan {
    reader: usize,
    epoch: usize,
    tag_indices: Vec<usize>,
    persistent: Vec<PersistentTag>,
    scenario_seed: u64,
    noise_seed: u64,
}

/// Runs a fleet of `config.readers` readers over a shared persistent
/// population, `threads` sessions at a time, and returns the aggregate
/// outcome.  Output is byte-identical for every `threads` value.
///
/// # Errors
///
/// Returns [`FleetError`] when the configuration is invalid or any session
/// fails to build or run.
pub fn run_fleet(
    protocol: &dyn Protocol,
    config: &FleetConfig,
    threads: usize,
) -> FleetResult<FleetOutcome> {
    config.validate()?;
    let mut population = Population::new(
        config.population,
        config.global_id_space,
        config.message_bits,
        config.seed,
    )?;

    let mut reader_clock: Vec<f64> = (0..config.readers)
        .map(|r| r as f64 * config.stagger_ms)
        .collect();
    let mut records: Vec<SessionRecord> = Vec::new();

    for epoch in 0..config.epochs {
        // Plan (serial): present tags, seeded shuffle, exact cells.
        let mut present: Vec<usize> = (0..population.len())
            .filter(|&i| population.is_present(i, epoch as u64, config.away_fraction))
            .collect();
        let mut rng =
            Xoshiro256::seed_from_u64(SplitMix64::mix(config.seed ^ ASSIGN_STREAM, epoch as u64));
        // Fisher–Yates, back to front.
        for i in (1..present.len()).rev() {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            present.swap(i, j);
        }
        let cells = present.len() / config.cell_k;
        let sessions_this_epoch = cells.min(config.readers);
        let mut plans: Vec<SessionPlan> = Vec::with_capacity(sessions_this_epoch);
        for reader in 0..sessions_this_epoch {
            let tag_indices: Vec<usize> =
                present[reader * config.cell_k..(reader + 1) * config.cell_k].to_vec();
            // Offering is serial and reader-ordered, so the population's
            // counters are schedule-independent.
            let persistent: Vec<PersistentTag> = tag_indices
                .iter()
                .map(|&i| PersistentTag {
                    global_id: population.tags()[i].global_id,
                    message: population.offer(i),
                })
                .collect();
            let scenario_seed = SplitMix64::mix(
                SplitMix64::mix(config.seed ^ SCENARIO_STREAM, epoch as u64),
                reader as u64,
            );
            plans.push(SessionPlan {
                reader,
                epoch,
                tag_indices,
                persistent,
                scenario_seed,
                noise_seed: SplitMix64::mix(scenario_seed, NOISE_STREAM),
            });
        }

        // Execute (parallel): sessions are pure functions of their plans.
        let cell_k = config.cell_k;
        let message_bits = config.message_bits;
        let global_id_space = config.global_id_space;
        let outcomes: Vec<FleetResult<(SessionPlan, SessionOutcome, f64)>> =
            work_steal_map(threads, plans, move |plan| {
                let started = std::time::Instant::now();
                let mut scenario = Scenario::builder(cell_k)
                    .seed(plan.scenario_seed)
                    .message_bits(message_bits)
                    .global_id_space(global_id_space)
                    .persistent_tags(plan.persistent.clone())
                    .build()?;
                let outcome = protocol.run(&mut scenario, plan.noise_seed)?;
                let host_ms = started.elapsed().as_secs_f64() * 1e3;
                Ok((plan, outcome, host_ms))
            });

        // Commit (serial, reader-ordered): population state and reader
        // clocks advance in plan order regardless of execution schedule.
        for result in outcomes {
            let (plan, outcome, host_ms) = result?;
            let delivered_flags = attribute_deliveries(&outcome, plan.tag_indices.len());
            for (&tag, &delivered) in plan.tag_indices.iter().zip(delivered_flags.iter()) {
                population.commit(tag, delivered, config.max_carry);
            }
            let start_ms = reader_clock[plan.reader];
            let end_ms = start_ms + outcome.wall_time_ms;
            reader_clock[plan.reader] = end_ms;
            records.push(SessionRecord {
                reader: plan.reader,
                epoch: plan.epoch,
                tag_ids: plan.persistent.iter().map(|p| p.global_id).collect(),
                start_ms,
                end_ms,
                outcome,
                delivered_flags,
                host_ms,
            });
        }
    }

    Ok(aggregate(protocol.name(), config, &population, records))
}

/// Per-tag delivery verdict for a session: the scheme's own attribution when
/// it provides one, otherwise the deterministic first-`delivered` fallback
/// (schemes like the analytic FSA model count deliveries without naming
/// tags).
fn attribute_deliveries(outcome: &SessionOutcome, cell_len: usize) -> Vec<bool> {
    if outcome.per_tag_delivered.len() == cell_len {
        return outcome.per_tag_delivered.clone();
    }
    let delivered = outcome.delivered_messages.min(cell_len);
    (0..cell_len).map(|i| i < delivered).collect()
}

/// Nearest-rank percentile over an unsorted sample (`p` in `[0, 100]`).
fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn aggregate(
    scheme: &str,
    config: &FleetConfig,
    population: &Population,
    records: Vec<SessionRecord>,
) -> FleetOutcome {
    let session_times: Vec<f64> = records.iter().map(|r| r.end_ms - r.start_ms).collect();
    let makespan_ms = records.iter().map(|r| r.end_ms).fold(0.0, f64::max);
    let delivered = population.delivered();

    // Event-ordered merge of the session intervals: sort all start/end
    // events deterministically (time, ends before starts at a tie, then
    // (reader, epoch)) and sweep for the concurrency high-water mark.
    let mut events: Vec<(f64, i8, usize, usize)> = Vec::with_capacity(records.len() * 2);
    for r in &records {
        events.push((r.start_ms, 1, r.reader, r.epoch));
        events.push((r.end_ms, -1, r.reader, r.epoch));
    }
    events.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| (a.2, a.3).cmp(&(b.2, b.3)))
    });
    let mut active: i64 = 0;
    let mut peak: i64 = 0;
    for (_, delta, _, _) in &events {
        active += i64::from(*delta);
        peak = peak.max(active);
    }

    let mut busy_ms = vec![0.0_f64; config.readers];
    for r in &records {
        busy_ms[r.reader] += r.end_ms - r.start_ms;
    }
    let utilization: Vec<f64> = busy_ms
        .iter()
        .map(|&b| {
            if makespan_ms > 0.0 {
                b / makespan_ms
            } else {
                0.0
            }
        })
        .collect();
    let mean_utilization = if utilization.is_empty() {
        0.0
    } else {
        utilization.iter().sum::<f64>() / utilization.len() as f64
    };

    let total_energy_j: f64 = records
        .iter()
        .map(|r| r.outcome.per_tag_energy_j.iter().sum::<f64>())
        .sum();

    FleetOutcome {
        scheme: scheme.to_string(),
        readers: config.readers,
        population: config.population,
        epochs: config.epochs,
        sessions: records.len(),
        offered: population.offered(),
        delivered,
        lost: population.expired(),
        carried_over: population.carried_over(),
        makespan_ms,
        total_msgs_per_s: if makespan_ms > 0.0 {
            delivered as f64 / (makespan_ms / 1e3)
        } else {
            0.0
        },
        p50_session_ms: percentile_ms(&session_times, 50.0),
        p99_session_ms: percentile_ms(&session_times, 99.0),
        energy_per_delivered_j: if delivered > 0 {
            total_energy_j / delivered as f64
        } else {
            0.0
        },
        utilization,
        mean_utilization,
        peak_concurrent_sessions: usize::try_from(peak).unwrap_or(0),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buzz::protocol::{BuzzConfig, BuzzProtocol};

    fn tiny_config() -> FleetConfig {
        FleetConfig {
            readers: 6,
            population: 64,
            cell_k: 8,
            epochs: 2,
            seed: 77,
            message_bits: 32,
            away_fraction: 0.2,
            max_carry: 1,
            stagger_ms: 10.0,
            global_id_space: 1 << 20,
        }
    }

    fn buzz_periodic() -> BuzzProtocol {
        BuzzProtocol::new(BuzzConfig {
            periodic_mode: true,
            ..BuzzConfig::default()
        })
        .expect("default periodic configuration is valid")
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        let good = tiny_config();
        assert!(good.validate().is_ok());
        for bad in [
            FleetConfig {
                readers: 0,
                ..good.clone()
            },
            FleetConfig {
                cell_k: 0,
                ..good.clone()
            },
            FleetConfig {
                population: 4,
                ..good.clone()
            },
            FleetConfig {
                epochs: 0,
                ..good.clone()
            },
            FleetConfig {
                message_bits: 0,
                ..good.clone()
            },
            FleetConfig {
                away_fraction: 1.0,
                ..good.clone()
            },
            FleetConfig {
                away_fraction: -0.1,
                ..good.clone()
            },
            FleetConfig {
                stagger_ms: -1.0,
                ..good.clone()
            },
            FleetConfig {
                stagger_ms: f64::NAN,
                ..good.clone()
            },
            FleetConfig {
                global_id_space: 3,
                ..good.clone()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn fleet_run_is_byte_identical_across_thread_counts() {
        let config = tiny_config();
        let protocol = buzz_periodic();
        let serial = run_fleet(&protocol, &config, 1).unwrap();
        for threads in [2, 4] {
            let parallel = run_fleet(&protocol, &config, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn fleet_conserves_messages_and_reports_sane_aggregates() {
        let config = tiny_config();
        let protocol = buzz_periodic();
        let outcome = run_fleet(&protocol, &config, 2).unwrap();
        assert!(outcome.conservation_holds());
        assert!(outcome.sessions > 0);
        assert!(outcome.delivered > 0);
        assert!(outcome.makespan_ms > 0.0);
        assert!(outcome.total_msgs_per_s > 0.0);
        assert!(outcome.p50_session_ms > 0.0);
        assert!(outcome.p99_session_ms >= outcome.p50_session_ms);
        assert!(outcome.peak_concurrent_sessions >= 1);
        assert_eq!(outcome.utilization.len(), config.readers);
        assert!(outcome
            .utilization
            .iter()
            .all(|&u| (0.0..=1.0).contains(&u)));
        assert!(outcome.total_host_ms() > 0.0);
        // Records are in deterministic (epoch, reader) order.
        for pair in outcome.records.windows(2) {
            assert!((pair[0].epoch, pair[0].reader) < (pair[1].epoch, pair[1].reader));
        }
    }

    #[test]
    fn carried_messages_persist_across_epochs() {
        // With aggressive churn and a carry budget, some messages should be
        // offered in one epoch and still pending (or expired) later; the
        // counters must keep conservation exact either way.
        let config = FleetConfig {
            epochs: 4,
            away_fraction: 0.45,
            ..tiny_config()
        };
        let protocol = buzz_periodic();
        let outcome = run_fleet(&protocol, &config, 2).unwrap();
        assert!(outcome.conservation_holds());
        assert_eq!(
            outcome.offered,
            outcome.delivered + outcome.lost + outcome.carried_over
        );
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_ms(&samples, 50.0), 50.0);
        assert_eq!(percentile_ms(&samples, 99.0), 99.0);
        assert_eq!(percentile_ms(&samples, 100.0), 100.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        assert_eq!(percentile_ms(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn session_record_equality_ignores_host_time() {
        let config = tiny_config();
        let protocol = buzz_periodic();
        let outcome = run_fleet(&protocol, &config, 1).unwrap();
        let mut tweaked = outcome.records[0].clone();
        tweaked.host_ms += 1234.5;
        assert_eq!(outcome.records[0], tweaked);
    }
}
