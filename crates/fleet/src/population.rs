//! The shared persistent tag population.
//!
//! A warehouse fleet serves one population: every tag has a stable global
//! identity, and a message that a session fails to deliver stays *pending* —
//! carried to whichever reader inventories the tag next.  This module owns
//! that state and the bookkeeping that makes fleet-level accounting exact:
//!
//! * a message is **offered** when a tag joining a session has nothing
//!   pending and generates a fresh reading,
//! * it is **delivered** when some session gets it through correctly,
//! * it is **expired** (counted lost) when it has been carried through more
//!   than `max_carry` failed sessions — the warehouse analogue of a sensor
//!   reading going stale,
//! * anything else is **carried over**, still pending at the end of the run.
//!
//! Conservation — `offered == delivered + expired + carried_over` — is the
//! fleet invariant the property tests pin; every transition below preserves
//! it by construction.
//!
//! Presence across epochs follows the `TagChurn` dynamics style: a pure
//! seeded hash per `(tag, epoch)`, so arrival/departure is deterministic and
//! independent of execution order.

use std::collections::HashSet;

use backscatter_codes::message::Message;
use backscatter_prng::{Rng64, SplitMix64, Xoshiro256};

use crate::{FleetError, FleetResult};

/// Stream salt separating global-id draws from other fleet randomness.
const ID_STREAM: u64 = 0x1dc0_11ec;
/// Stream salt for per-tag message generation.
const MESSAGE_STREAM: u64 = 0x5e4d_ab1e;
/// Stream salt for the churn presence hash.
const CHURN_STREAM: u64 = 0xc4u64 << 32 | 0x12_3975;

/// A message waiting to be delivered, with its carry history.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingMessage {
    /// The payload the tag is carrying.
    pub message: Message,
    /// Completed sessions that tried and failed to deliver it.
    pub sessions_carried: usize,
}

/// One tag's persistent state across the whole fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTagState {
    /// The tag's stable global identifier.
    pub global_id: u64,
    /// The message currently pending delivery, if any.
    pub pending: Option<PendingMessage>,
    /// Messages this tag has generated so far (seeds the next draw).
    pub generation: u64,
}

/// The shared tag population and its conservation counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Population {
    seed: u64,
    message_bits: usize,
    tags: Vec<FleetTagState>,
    offered: usize,
    delivered: usize,
    expired: usize,
}

impl Population {
    /// Creates a population of `size` tags with distinct global ids drawn
    /// from `[0, global_id_space)`, all initially idle (nothing pending).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] for a zero size, a zero
    /// message length, or an id space smaller than the population.
    pub fn new(
        size: usize,
        global_id_space: u64,
        message_bits: usize,
        seed: u64,
    ) -> FleetResult<Self> {
        if size == 0 {
            return Err(FleetError::InvalidParameter(
                "population must have at least one tag",
            ));
        }
        if message_bits == 0 {
            return Err(FleetError::InvalidParameter("messages must be non-empty"));
        }
        if global_id_space < size as u64 {
            return Err(FleetError::InvalidParameter(
                "global id space must be at least the population size",
            ));
        }
        let mut rng = Xoshiro256::seed_from_u64(SplitMix64::mix(seed, ID_STREAM));
        let mut seen: HashSet<u64> = HashSet::with_capacity(size);
        let mut tags = Vec::with_capacity(size);
        for _ in 0..size {
            let mut gid = rng.next_bounded(global_id_space);
            while seen.contains(&gid) {
                gid = rng.next_bounded(global_id_space);
            }
            seen.insert(gid);
            tags.push(FleetTagState {
                global_id: gid,
                pending: None,
                generation: 0,
            });
        }
        Ok(Self {
            seed,
            message_bits,
            tags,
            offered: 0,
            delivered: 0,
            expired: 0,
        })
    }

    /// Number of tags in the population.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the population is empty (never true for a built population).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The tags (immutable view).
    #[must_use]
    pub fn tags(&self) -> &[FleetTagState] {
        &self.tags
    }

    /// Whether tag `index` is on the warehouse floor during `epoch`.
    ///
    /// Pure in `(population seed, global id, epoch)` — the `TagChurn` style
    /// of seeded presence, at epoch granularity: re-consultation from any
    /// thread or replay order gives the same answer, and each tag's
    /// presence stream is independent of every other's.
    #[must_use]
    pub fn is_present(&self, index: usize, epoch: u64, away_fraction: f64) -> bool {
        let gid = self.tags[index].global_id;
        let h = SplitMix64::mix(SplitMix64::mix(self.seed ^ CHURN_STREAM, gid), epoch);
        // 53 uniform mantissa bits -> [0, 1).
        let fraction = (h >> 11) as f64 / (1u64 << 53) as f64;
        fraction >= away_fraction
    }

    /// Ensures tag `index` has a message pending (generating — and counting
    /// as offered — a fresh one if idle) and returns a copy for the session
    /// scenario.
    pub fn offer(&mut self, index: usize) -> Message {
        let bits = self.message_bits;
        let seed = self.seed;
        let tag = &mut self.tags[index];
        if tag.pending.is_none() {
            let msg_seed = SplitMix64::mix(
                SplitMix64::mix(seed ^ MESSAGE_STREAM, tag.global_id),
                tag.generation,
            );
            let message = Message::random(msg_seed, bits)
                .expect("message_bits validated at population construction");
            tag.generation += 1;
            tag.pending = Some(PendingMessage {
                message,
                sessions_carried: 0,
            });
            self.offered += 1;
        }
        tag.pending
            .as_ref()
            .map(|p| p.message.clone())
            .expect("pending message just ensured")
    }

    /// Commits one session's verdict for tag `index`: a delivery clears the
    /// pending message; a failure increments its carry count and expires it
    /// (counted lost) once it has been carried through more than `max_carry`
    /// failed sessions.
    pub fn commit(&mut self, index: usize, delivered: bool, max_carry: usize) {
        let tag = &mut self.tags[index];
        let Some(pending) = tag.pending.as_mut() else {
            return;
        };
        if delivered {
            tag.pending = None;
            self.delivered += 1;
        } else {
            pending.sessions_carried += 1;
            if pending.sessions_carried > max_carry {
                tag.pending = None;
                self.expired += 1;
            }
        }
    }

    /// Messages generated (offered for delivery) so far.
    #[must_use]
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Messages delivered so far.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Messages expired (lost) after exceeding their carry budget.
    #[must_use]
    pub fn expired(&self) -> usize {
        self.expired
    }

    /// Messages still pending delivery right now.
    #[must_use]
    pub fn carried_over(&self) -> usize {
        self.tags.iter().filter(|t| t.pending.is_some()).count()
    }

    /// The fleet conservation invariant: every offered message is delivered,
    /// expired, or still pending.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.offered == self.delivered + self.expired + self.carried_over()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_validated() {
        assert!(Population::new(0, 10, 32, 1).is_err());
        assert!(Population::new(4, 10, 0, 1).is_err());
        assert!(Population::new(4, 3, 32, 1).is_err());
        assert!(Population::new(4, 4, 32, 1).is_ok());
    }

    #[test]
    fn global_ids_are_distinct_and_deterministic() {
        let a = Population::new(256, 1_000, 32, 7).unwrap();
        let b = Population::new(256, 1_000, 32, 7).unwrap();
        assert_eq!(a, b);
        let mut ids: Vec<u64> = a.tags().iter().map(|t| t.global_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 256);
    }

    #[test]
    fn presence_is_pure_and_roughly_calibrated() {
        let p = Population::new(500, 1_000_000, 32, 11).unwrap();
        // Pure: same query, same answer.
        for index in [0usize, 100, 499] {
            assert_eq!(p.is_present(index, 3, 0.25), p.is_present(index, 3, 0.25));
        }
        // Calibrated: ~75 % present at away_fraction 0.25.
        let present = (0..500).filter(|&i| p.is_present(i, 1, 0.25)).count();
        assert!((300..=450).contains(&present), "present = {present}");
        // Everyone is present with churn disabled.
        assert_eq!((0..500).filter(|&i| p.is_present(i, 1, 0.0)).count(), 500);
    }

    #[test]
    fn offer_generates_once_and_redelivers_while_pending() {
        let mut p = Population::new(4, 100, 32, 3).unwrap();
        let first = p.offer(0);
        assert_eq!(p.offered(), 1);
        // A second offer while pending returns the same message, not a new one.
        let again = p.offer(0);
        assert_eq!(first, again);
        assert_eq!(p.offered(), 1);
        // After delivery, the next offer generates a fresh (different) message.
        p.commit(0, true, 2);
        assert_eq!(p.delivered(), 1);
        let fresh = p.offer(0);
        assert_ne!(first, fresh);
        assert_eq!(p.offered(), 2);
        assert!(p.conservation_holds());
    }

    #[test]
    fn carry_budget_expires_messages() {
        let mut p = Population::new(2, 100, 32, 5).unwrap();
        p.offer(0);
        // max_carry = 1: first failure carries, second expires.
        p.commit(0, false, 1);
        assert_eq!(p.carried_over(), 1);
        assert_eq!(p.expired(), 0);
        p.commit(0, false, 1);
        assert_eq!(p.carried_over(), 0);
        assert_eq!(p.expired(), 1);
        assert!(p.conservation_holds());
        // Committing an idle tag is a no-op.
        p.commit(1, true, 1);
        assert_eq!(p.delivered(), 0);
        assert!(p.conservation_holds());
    }
}
