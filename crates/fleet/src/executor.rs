//! Deterministic work-stealing executor for uneven session costs.
//!
//! The bench harness's `parallel_map` hands threads work through one shared
//! atomic cursor — perfect when items cost roughly the same, but a fleet's
//! sessions do not: a clean cell decodes in a fraction of the time a
//! recovery-heavy cell takes, and a single expensive session at the end of
//! the queue can leave every other worker idle.  This module generalizes the
//! cursor to *per-worker deques with stealing*: each worker starts with a
//! contiguous block of the items (good locality, zero contention on the
//! happy path) and, when its own deque drains, steals from the back of the
//! longest remaining deque.
//!
//! Determinism is preserved the same way `parallel_map` preserves it:
//! stealing only changes *which thread* runs an item and *when* — never the
//! item's input (each closure call sees only its own item) nor where its
//! result lands (results are written to the item's original index).  So for
//! a pure closure the output vector is byte-identical for every thread
//! count, which is what lets `fig_fleet` honour the repo-wide
//! `--threads N == --threads 1` contract.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Maps `f` over `items` using up to `threads` work-stealing workers,
/// returning results in input order.
///
/// With `threads <= 1` (or at most one item) the map runs inline on the
/// caller's thread with no synchronization at all. The closure only needs
/// `Sync` (shared by reference across workers), mirroring `parallel_map`.
pub fn work_steal_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    let len = items.len();
    let workers = threads.min(len);
    // Item and result cells indexed by original position: whoever pops index
    // `i` from any deque takes item `i` and writes result `i`.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    // Seed each worker with a contiguous block, like a static partition;
    // stealing only kicks in when the blocks turn out to be uneven in cost.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let start = w * len / workers;
            let end = (w + 1) * len / workers;
            Mutex::new((start..end).collect())
        })
        .collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let cells = &cells;
            let results = &results;
            let deques = &deques;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first, front-to-back.
                let mut next = deques[me].lock().expect("deque lock poisoned").pop_front();
                if next.is_none() {
                    // Steal from the back of the currently longest deque.
                    let mut best: Option<(usize, usize)> = None;
                    for (other, deque) in deques.iter().enumerate() {
                        if other == me {
                            continue;
                        }
                        let remaining = deque.lock().expect("deque lock poisoned").len();
                        if remaining > 0 && best.is_none_or(|(_, n)| remaining > n) {
                            best = Some((other, remaining));
                        }
                    }
                    if let Some((victim, _)) = best {
                        next = deques[victim]
                            .lock()
                            .expect("deque lock poisoned")
                            .pop_back();
                    }
                }
                let Some(index) = next else {
                    // Every deque was empty at scan time.  Items already
                    // popped are owned by their poppers, so nothing is lost.
                    break;
                };
                let item = cells[index]
                    .lock()
                    .expect("item lock poisoned")
                    .take()
                    .expect("each index is popped exactly once");
                let out = f(item);
                *results[index].lock().expect("result lock poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result lock poisoned")
                .expect("all indices were processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..133).collect();
        let serial = work_steal_map(1, items.clone(), |x| x * x + 1);
        for threads in [2, 3, 4, 8, 200] {
            let parallel = work_steal_map(threads, items.clone(), |x| x * x + 1);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn float_work_is_byte_identical_across_thread_counts() {
        let items: Vec<u64> = (0..64).collect();
        let f = |x: u64| {
            let mut acc = 0.1_f64;
            for i in 0..x % 17 {
                acc = acc.mul_add(1.000_1, (i as f64).sin());
            }
            acc
        };
        let serial = work_steal_map(1, items.clone(), f);
        let parallel = work_steal_map(7, items, f);
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let parallel_bits: Vec<u64> = parallel.iter().map(|v| v.to_bits()).collect();
        assert_eq!(serial_bits, parallel_bits);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(work_steal_map(4, empty, |x| x), Vec::<u32>::new());
        assert_eq!(work_steal_map(4, vec![41], |x| x + 1), vec![42]);
    }

    #[test]
    fn every_item_runs_exactly_once_under_uneven_cost() {
        let calls = AtomicUsize::new(0);
        // Front-loaded cost: the first block is far more expensive than the
        // rest, so the later workers must steal to finish.
        let items: Vec<usize> = (0..100).collect();
        let out = work_steal_map(8, items, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            if i < 10 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 2
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = work_steal_map(32, (0..5).collect::<Vec<_>>(), |x| x + 100);
        assert_eq!(out, vec![100, 101, 102, 103, 104]);
    }
}
