//! Fleet layer: many readers, one shared persistent tag population.
//!
//! The paper evaluates one reader running one session.  A production
//! deployment is a *fleet*: hundreds of readers covering a warehouse, each
//! running staggered, overlapping sessions against the same population of
//! tags — and a tag that misses one session carries its undelivered message
//! to the next reader that inventories it.  This crate builds that model on
//! top of the unified [`buzz::session::Protocol`] trait, so any scheme (Buzz,
//! `buzz+r`, TDMA, …) can be evaluated at fleet scale without changes:
//!
//! * [`population`] — the shared persistent population: tags keep their
//!   global identity and undelivered message state across sessions, arrive
//!   and depart between epochs (`TagChurn`-style presence), and expire
//!   messages that have been carried too long,
//! * [`executor`] — a deterministic work-stealing thread pool that
//!   generalizes the bench harness's shared-cursor `parallel_map` to the
//!   uneven per-session cost of a fleet (a stalled decode must not idle the
//!   other workers),
//! * [`warehouse`] — the epoch loop: deterministic tag→reader assignment,
//!   parallel session execution, an event-ordered merge of the completions,
//!   and the aggregate [`FleetOutcome`] headline — total msgs/s, p50/p99
//!   session latency, energy per delivered message, per-reader utilization.
//!
//! Everything is seeded: a fleet run with `threads = N` is byte-identical to
//! the serial run, extending the repo's determinism contract to the new
//! subsystem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod population;
pub mod warehouse;

pub use executor::work_steal_map;
pub use population::{FleetTagState, PendingMessage, Population};
pub use warehouse::{run_fleet, FleetConfig, FleetOutcome, SessionRecord};

/// Errors produced by the fleet layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A configuration value was outside its valid domain.
    InvalidParameter(&'static str),
    /// A session run by the fleet failed.
    Session(buzz::session::SessionError),
    /// A simulator operation failed while building a session scenario.
    Sim(backscatter_sim::SimError),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            FleetError::Session(e) => write!(f, "fleet session error: {e}"),
            FleetError::Sim(e) => write!(f, "fleet scenario error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<buzz::session::SessionError> for FleetError {
    fn from(e: buzz::session::SessionError) -> Self {
        FleetError::Session(e)
    }
}

impl From<backscatter_sim::SimError> for FleetError {
    fn from(e: backscatter_sim::SimError) -> Self {
        FleetError::Sim(e)
    }
}

/// Result alias for fleet operations.
pub type FleetResult<T> = Result<T, FleetError>;
