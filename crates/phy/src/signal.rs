//! Received-signal containers and reader-side signal processing.
//!
//! The USRP reader in the paper captures complex baseband samples at 4 MHz
//! while tags backscatter at 80 kbps, i.e. ~50 samples per bit.  This module
//! provides:
//!
//! * [`IqTrace`] — a sample-accurate received waveform (used to reproduce the
//!   magnitude plots of Fig. 2 and Fig. 8),
//! * [`Constellation`] — symbol-level constellation extraction (Fig. 3),
//! * [`PowerDetector`] — the occupied/empty slot decision used by the
//!   cardinality-estimation and bucket-hashing stages,
//! * level clustering used to count distinct received levels in a collision.

use crate::complex::Complex;
use crate::{PhyError, PhyResult};

/// A sample-accurate complex baseband trace captured by the reader.
#[derive(Debug, Clone, PartialEq)]
pub struct IqTrace {
    samples: Vec<Complex>,
    /// Sampling rate in Hz.
    sample_rate_hz: f64,
}

impl IqTrace {
    /// Wraps raw samples captured at `sample_rate_hz`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] for a non-positive sample rate.
    pub fn new(samples: Vec<Complex>, sample_rate_hz: f64) -> PhyResult<Self> {
        if !(sample_rate_hz.is_finite() && sample_rate_hz > 0.0) {
            return Err(PhyError::InvalidParameter(
                "sample rate must be finite and positive",
            ));
        }
        Ok(Self {
            samples,
            sample_rate_hz,
        })
    }

    /// Builds a trace by holding each symbol for `samples_per_symbol` samples
    /// (rectangular pulse shaping, which is what OOK backscatter looks like at
    /// the reader after its matched filter).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] if `samples_per_symbol` is zero
    /// or the sample rate is invalid.
    pub fn from_symbols(
        symbols: &[Complex],
        samples_per_symbol: usize,
        sample_rate_hz: f64,
    ) -> PhyResult<Self> {
        if samples_per_symbol == 0 {
            return Err(PhyError::InvalidParameter(
                "samples per symbol must be non-zero",
            ));
        }
        let mut samples = Vec::with_capacity(symbols.len() * samples_per_symbol);
        for &s in symbols {
            samples.extend(std::iter::repeat_n(s, samples_per_symbol));
        }
        Self::new(samples, sample_rate_hz)
    }

    /// The raw samples.
    #[must_use]
    pub fn samples(&self) -> &[Complex] {
        &self.samples
    }

    /// The sampling rate in Hz.
    #[must_use]
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// The trace duration in microseconds.
    #[must_use]
    pub fn duration_us(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate_hz * 1e6
    }

    /// The magnitude of each sample paired with its time in microseconds —
    /// exactly the series plotted in Fig. 2 / Fig. 8.
    #[must_use]
    pub fn magnitude_series_us(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .enumerate()
            .map(|(i, s)| (i as f64 / self.sample_rate_hz * 1e6, s.abs()))
            .collect()
    }

    /// Averages samples within each symbol period back down to one complex
    /// value per symbol, using only the central fraction of each period.
    ///
    /// The paper notes (§8.1) that the reader samples much faster than the bit
    /// rate and uses "the middle samples of each bit to increase robustness to
    /// synchronization errors"; `guard_fraction` is the fraction trimmed from
    /// each edge (0.25 keeps the middle half).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] for a zero symbol length or a
    /// guard fraction outside `[0, 0.5)`.
    pub fn integrate_symbols(
        &self,
        samples_per_symbol: usize,
        guard_fraction: f64,
    ) -> PhyResult<Vec<Complex>> {
        if samples_per_symbol == 0 {
            return Err(PhyError::InvalidParameter(
                "samples per symbol must be non-zero",
            ));
        }
        if !(0.0..0.5).contains(&guard_fraction) {
            return Err(PhyError::InvalidParameter(
                "guard fraction must be in [0, 0.5)",
            ));
        }
        let guard = (samples_per_symbol as f64 * guard_fraction).floor() as usize;
        let mut out = Vec::with_capacity(self.samples.len() / samples_per_symbol);
        for chunk in self.samples.chunks_exact(samples_per_symbol) {
            let core = &chunk[guard..samples_per_symbol - guard];
            let sum: Complex = core.iter().copied().sum();
            out.push(sum / core.len() as f64);
        }
        Ok(out)
    }
}

/// A symbol-level constellation: the set of received complex values.
#[derive(Debug, Clone, PartialEq)]
pub struct Constellation {
    points: Vec<Complex>,
}

impl Constellation {
    /// Collects the constellation of a symbol stream.
    #[must_use]
    pub fn from_symbols(symbols: &[Complex]) -> Self {
        Self {
            points: symbols.to_vec(),
        }
    }

    /// The raw constellation points (one per received symbol).
    #[must_use]
    pub fn points(&self) -> &[Complex] {
        &self.points
    }

    /// Greedily clusters the points with distance threshold `epsilon` and
    /// returns the cluster centroids — i.e. the distinct constellation
    /// points.  With K colliding tags and clean channels this returns `2^K`
    /// centroids (Fig. 3: 2 points for one tag, 4 for two tags).
    #[must_use]
    pub fn distinct_levels(&self, epsilon: f64) -> Vec<Complex> {
        let mut centroids: Vec<(Complex, usize)> = Vec::new();
        for &p in &self.points {
            match centroids
                .iter_mut()
                .find(|(c, _)| (*c - p).abs() <= epsilon)
            {
                Some((c, n)) => {
                    // Running mean keeps the centroid centred on its cluster.
                    let count = *n as f64;
                    *c = (*c * count + p) / (count + 1.0);
                    *n += 1;
                }
                None => centroids.push((p, 1)),
            }
        }
        centroids.into_iter().map(|(c, _)| c).collect()
    }

    /// The minimum distance between any two distinct levels, a proxy for how
    /// decodable the collision constellation is at a given noise level.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::Empty`] if there are fewer than two distinct levels.
    pub fn minimum_distance(&self, epsilon: f64) -> PhyResult<f64> {
        let levels = self.distinct_levels(epsilon);
        if levels.len() < 2 {
            return Err(PhyError::Empty);
        }
        let mut min = f64::MAX;
        for i in 0..levels.len() {
            for j in (i + 1)..levels.len() {
                min = min.min((levels[i] - levels[j]).abs());
            }
        }
        Ok(min)
    }
}

/// Occupied/empty decision for a time slot based on received power.
///
/// The identification protocol's first two stages only need to know whether
/// *any* tag transmitted in a slot (§5.1-A/B); this detector thresholds the
/// mean power of the slot's samples after baseline removal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDetector {
    /// Power threshold above which a slot is declared occupied.
    pub threshold: f64,
}

/// The reader's verdict about one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotObservation {
    /// No tag transmitted (power below threshold).
    Empty,
    /// At least one tag transmitted.
    Occupied,
}

impl PowerDetector {
    /// Creates a detector with an absolute power threshold.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] for a negative or non-finite
    /// threshold.
    pub fn new(threshold: f64) -> PhyResult<Self> {
        if !(threshold.is_finite() && threshold >= 0.0) {
            return Err(PhyError::InvalidParameter(
                "power threshold must be finite and non-negative",
            ));
        }
        Ok(Self { threshold })
    }

    /// Chooses a threshold halfway (in power) between the noise floor and the
    /// weakest expected single-tag reflection.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] if the weakest signal power is
    /// not above the noise power.
    pub fn between(noise_power: f64, weakest_signal_power: f64) -> PhyResult<Self> {
        if !(weakest_signal_power > noise_power && noise_power >= 0.0) {
            return Err(PhyError::InvalidParameter(
                "weakest signal power must exceed noise power",
            ));
        }
        Self::new((noise_power + weakest_signal_power) / 2.0)
    }

    /// Classifies one slot from its (baseline-removed) received symbol.
    #[must_use]
    pub fn classify_symbol(&self, symbol: Complex) -> SlotObservation {
        if symbol.norm_sqr() > self.threshold {
            SlotObservation::Occupied
        } else {
            SlotObservation::Empty
        }
    }

    /// Classifies one slot from all of its samples (mean power).
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::Empty`] for an empty sample slice.
    pub fn classify_samples(&self, samples: &[Complex]) -> PhyResult<SlotObservation> {
        if samples.is_empty() {
            return Err(PhyError::Empty);
        }
        let mean_power: f64 =
            samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64;
        Ok(if mean_power > self.threshold {
            SlotObservation::Occupied
        } else {
            SlotObservation::Empty
        })
    }

    /// Classifies a sequence of per-slot symbols.
    #[must_use]
    pub fn classify_all(&self, symbols: &[Complex]) -> Vec<SlotObservation> {
        symbols.iter().map(|&s| self.classify_symbol(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_rejects_bad_rate() {
        assert!(IqTrace::new(vec![], 0.0).is_err());
        assert!(IqTrace::new(vec![], f64::NAN).is_err());
    }

    #[test]
    fn trace_duration_and_series() {
        let symbols = vec![Complex::ONE, Complex::ZERO];
        let trace = IqTrace::from_symbols(&symbols, 50, 4.0e6).unwrap();
        assert_eq!(trace.samples().len(), 100);
        assert!((trace.duration_us() - 25.0).abs() < 1e-9);
        let series = trace.magnitude_series_us();
        assert_eq!(series.len(), 100);
        assert!((series[0].1 - 1.0).abs() < 1e-12);
        assert!((series[99].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn from_symbols_rejects_zero_sps() {
        assert!(IqTrace::from_symbols(&[Complex::ONE], 0, 1.0e6).is_err());
    }

    #[test]
    fn integrate_symbols_recovers_values() {
        let symbols = vec![
            Complex::new(1.0, -0.5),
            Complex::new(0.25, 0.25),
            Complex::ZERO,
        ];
        let trace = IqTrace::from_symbols(&symbols, 40, 4.0e6).unwrap();
        let back = trace.integrate_symbols(40, 0.25).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.iter().zip(&symbols) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn integrate_symbols_validates_parameters() {
        let trace = IqTrace::from_symbols(&[Complex::ONE], 10, 1.0e6).unwrap();
        assert!(trace.integrate_symbols(0, 0.1).is_err());
        assert!(trace.integrate_symbols(10, 0.5).is_err());
        assert!(trace.integrate_symbols(10, -0.1).is_err());
    }

    #[test]
    fn single_tag_constellation_has_two_levels() {
        // Tag alternating 0/1 through a channel of 0.3+0.1i over a baseline.
        let baseline = Complex::new(1.4, -1.2);
        let h = Complex::new(0.3, 0.1);
        let symbols: Vec<Complex> = (0..100)
            .map(|i| if i % 2 == 0 { baseline } else { baseline + h })
            .collect();
        let c = Constellation::from_symbols(&symbols);
        assert_eq!(c.distinct_levels(1e-6).len(), 2);
    }

    #[test]
    fn two_tag_constellation_has_four_levels() {
        let h1 = Complex::new(0.3, 0.0);
        let h2 = Complex::new(0.0, 0.2);
        let mut symbols = Vec::new();
        for b1 in [false, true] {
            for b2 in [false, true] {
                for _ in 0..10 {
                    let mut y = Complex::ZERO;
                    if b1 {
                        y += h1;
                    }
                    if b2 {
                        y += h2;
                    }
                    symbols.push(y);
                }
            }
        }
        let c = Constellation::from_symbols(&symbols);
        assert_eq!(c.distinct_levels(1e-6).len(), 4);
        let dmin = c.minimum_distance(1e-6).unwrap();
        assert!((dmin - 0.2).abs() < 1e-9);
    }

    #[test]
    fn minimum_distance_needs_two_levels() {
        let c = Constellation::from_symbols(&[Complex::ONE; 5]);
        assert!(c.minimum_distance(1e-6).is_err());
    }

    #[test]
    fn clustering_merges_noisy_points() {
        let mut symbols = Vec::new();
        for i in 0..50 {
            let jitter = (i % 5) as f64 * 1e-3;
            symbols.push(Complex::new(1.0 + jitter, 0.0));
            symbols.push(Complex::new(0.0, jitter));
        }
        let c = Constellation::from_symbols(&symbols);
        assert_eq!(c.distinct_levels(0.05).len(), 2);
    }

    #[test]
    fn power_detector_validates_threshold() {
        assert!(PowerDetector::new(-1.0).is_err());
        assert!(PowerDetector::between(1.0, 0.5).is_err());
        assert!(PowerDetector::between(0.01, 1.0).is_ok());
    }

    #[test]
    fn power_detector_classifies_slots() {
        let det = PowerDetector::new(0.25).unwrap();
        assert_eq!(
            det.classify_symbol(Complex::new(1.0, 0.0)),
            SlotObservation::Occupied
        );
        assert_eq!(
            det.classify_symbol(Complex::new(0.1, 0.1)),
            SlotObservation::Empty
        );
        let obs = det.classify_all(&[Complex::ONE, Complex::ZERO]);
        assert_eq!(obs, vec![SlotObservation::Occupied, SlotObservation::Empty]);
    }

    #[test]
    fn power_detector_on_samples() {
        let det = PowerDetector::new(0.25).unwrap();
        assert!(det.classify_samples(&[]).is_err());
        let occupied = det
            .classify_samples(&[Complex::ONE, Complex::ONE, Complex::ZERO])
            .unwrap();
        assert_eq!(occupied, SlotObservation::Occupied);
    }
}
