//! Additive white Gaussian noise.
//!
//! The simulator injects circularly-symmetric complex Gaussian noise into the
//! reader's received samples.  Noise power is specified either directly or via
//! a target SNR relative to a signal power.  Gaussian variates are produced by
//! the Box–Muller transform over the deterministic [`backscatter_prng`]
//! generators so that experiment runs are exactly reproducible.

use backscatter_prng::{Rng64, Xoshiro256};

use crate::complex::Complex;
use crate::{PhyError, PhyResult};

/// A source of circularly-symmetric complex AWGN with configurable power.
#[derive(Debug, Clone)]
pub struct AwgnSource {
    rng: Xoshiro256,
    /// Total noise power `E[|n|^2]` (split evenly between I and Q).
    noise_power: f64,
    /// A spare Gaussian variate from the Box–Muller pair, if any.
    spare: Option<f64>,
}

impl AwgnSource {
    /// Creates a noise source with total complex noise power `noise_power`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] if `noise_power` is negative or
    /// not finite.
    pub fn new(seed: u64, noise_power: f64) -> PhyResult<Self> {
        if !(noise_power.is_finite() && noise_power >= 0.0) {
            return Err(PhyError::InvalidParameter(
                "noise power must be finite and non-negative",
            ));
        }
        Ok(Self {
            rng: Xoshiro256::seed_from_u64(seed),
            noise_power,
            spare: None,
        })
    }

    /// Creates a noise source whose power achieves `snr_db` for a signal of
    /// power `signal_power`.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] if `signal_power` is not
    /// positive and finite or `snr_db` is not finite.
    pub fn for_snr(seed: u64, signal_power: f64, snr_db: f64) -> PhyResult<Self> {
        if !(signal_power.is_finite() && signal_power > 0.0) {
            return Err(PhyError::InvalidParameter(
                "signal power must be finite and positive",
            ));
        }
        if !snr_db.is_finite() {
            return Err(PhyError::InvalidParameter("SNR must be finite"));
        }
        let snr_linear = 10f64.powf(snr_db / 10.0);
        Self::new(seed, signal_power / snr_linear)
    }

    /// The configured total noise power.
    #[must_use]
    pub fn noise_power(&self) -> f64 {
        self.noise_power
    }

    /// Draws one standard-normal variate via Box–Muller.
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let mut u1 = self.rng.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one complex noise sample with total power `noise_power`.
    pub fn sample(&mut self) -> Complex {
        // Each quadrature carries half the total power.
        let sigma = (self.noise_power / 2.0).sqrt();
        Complex::new(
            self.standard_normal() * sigma,
            self.standard_normal() * sigma,
        )
    }

    /// Adds noise in place to a slice of received samples.
    pub fn add_to(&mut self, samples: &mut [Complex]) {
        for s in samples {
            *s += self.sample();
        }
    }

    /// Returns a noisy copy of `samples`.
    #[must_use]
    pub fn corrupt(&mut self, samples: &[Complex]) -> Vec<Complex> {
        samples.iter().map(|&s| s + self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_power() {
        assert!(AwgnSource::new(1, -1.0).is_err());
        assert!(AwgnSource::new(1, f64::NAN).is_err());
        assert!(AwgnSource::for_snr(1, 0.0, 10.0).is_err());
        assert!(AwgnSource::for_snr(1, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn zero_power_noise_is_silent() {
        let mut n = AwgnSource::new(3, 0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(n.sample(), Complex::ZERO);
        }
    }

    #[test]
    fn empirical_power_matches_configuration() {
        let target = 0.25;
        let mut n = AwgnSource::new(42, target).unwrap();
        let count = 200_000;
        let measured: f64 = (0..count).map(|_| n.sample().norm_sqr()).sum::<f64>() / count as f64;
        assert!(
            (measured - target).abs() / target < 0.05,
            "measured = {measured}"
        );
    }

    #[test]
    fn empirical_mean_is_zero() {
        let mut n = AwgnSource::new(7, 1.0).unwrap();
        let count = 100_000;
        let sum: Complex = (0..count).map(|_| n.sample()).sum();
        let mean = sum / count as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn snr_constructor_sets_power() {
        // 10 dB SNR with unit signal power => noise power 0.1.
        let n = AwgnSource::for_snr(1, 1.0, 10.0).unwrap();
        assert!((n.noise_power() - 0.1).abs() < 1e-12);
        // 0 dB => equal powers.
        let n = AwgnSource::for_snr(1, 2.0, 0.0).unwrap();
        assert!((n.noise_power() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn corrupt_preserves_length_and_is_deterministic() {
        let clean = vec![Complex::ONE; 64];
        let mut a = AwgnSource::new(9, 0.5).unwrap();
        let mut b = AwgnSource::new(9, 0.5).unwrap();
        let na = a.corrupt(&clean);
        let nb = b.corrupt(&clean);
        assert_eq!(na.len(), 64);
        assert_eq!(na, nb);
        assert_ne!(na, clean);
    }
}
