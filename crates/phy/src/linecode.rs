//! Baseband line codes used by EPC Gen-2 backscatter links.
//!
//! EPC Gen-2 tags encode their uplink bits with either FM0 or Miller-M
//! (M ∈ {2, 4, 8}) *before* ON-OFF keying them onto the carrier.  The paper's
//! TDMA baseline uses Miller-4 (§9), which trades 4 subcarrier cycles per bit
//! (4× more impedance switching, hence 4× the symbol rate and more energy,
//! see Fig. 13) for robustness to bad channels.
//!
//! These encoders work at the *chip* level: one data bit becomes `chips_per_bit`
//! binary chips, each of which is then OOK-modulated.  The decoders correlate
//! against the two candidate chip patterns per bit.

use crate::{PhyError, PhyResult};

/// A binary line code mapping data bits to transmitted chips.
pub trait LineCode {
    /// Number of chips transmitted per data bit.
    fn chips_per_bit(&self) -> usize;

    /// Encodes a full bit string into chips.
    fn encode(&self, bits: &[bool]) -> Vec<bool>;

    /// Decodes chips back into bits by per-bit correlation.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::LengthMismatch`] if `chips` is not a whole number
    /// of encoded bits.
    fn decode(&self, chips: &[bool]) -> PhyResult<Vec<bool>>;

    /// Number of impedance transitions per data bit (averaged over the two bit
    /// values), used by the energy model: each transition costs switching
    /// energy on the tag.
    fn transitions_per_bit(&self) -> f64;
}

/// FM0 (bi-phase space) encoding: the baseline inverts at every bit boundary,
/// and a "0" bit has an additional mid-bit inversion.
///
/// FM0 is the lowest-overhead Gen-2 encoding (2 chips/bit) and is what the
/// paper's Buzz data phase effectively assumes (plain OOK at the data rate,
/// 1 transition per bit on average).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fm0 {
    _private: (),
}

impl Fm0 {
    /// Creates an FM0 encoder.
    #[must_use]
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl LineCode for Fm0 {
    fn chips_per_bit(&self) -> usize {
        2
    }

    fn encode(&self, bits: &[bool]) -> Vec<bool> {
        // Track the current baseband level; FM0 always inverts at a bit
        // boundary, and inverts mid-bit for a data "0".
        let mut level = true;
        let mut chips = Vec::with_capacity(bits.len() * 2);
        for &bit in bits {
            level = !level; // boundary inversion
            chips.push(level);
            if !bit {
                level = !level; // mid-bit inversion encodes "0"
            }
            chips.push(level);
        }
        chips
    }

    fn decode(&self, chips: &[bool]) -> PhyResult<Vec<bool>> {
        if !chips.len().is_multiple_of(2) {
            return Err(PhyError::LengthMismatch {
                expected: chips.len() + 1,
                actual: chips.len(),
            });
        }
        // A bit is "1" when the two half-bit chips are equal (no mid-bit
        // inversion), "0" when they differ.
        Ok(chips
            .chunks_exact(2)
            .map(|pair| pair[0] == pair[1])
            .collect())
    }

    fn transitions_per_bit(&self) -> f64 {
        // Boundary inversion always (1) + mid-bit inversion for "0" bits
        // (expected 0.5 for random data).
        1.5
    }
}

/// Miller-M encoding: each data bit is multiplied by a square-wave subcarrier
/// of M cycles per bit; data is carried in the phase inversions between bits.
///
/// The implementation captures the two properties the evaluation depends on:
/// the M-fold increase in chip rate (bandwidth/robustness trade) and the
/// 2·M impedance transitions per bit (energy cost, Fig. 13).
#[derive(Debug, Clone, Copy)]
pub struct Miller {
    m: usize,
}

impl Miller {
    /// Creates a Miller encoder with `m` subcarrier cycles per bit.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] unless `m ∈ {2, 4, 8}` (the
    /// values the Gen-2 standard defines).
    pub fn new(m: usize) -> PhyResult<Self> {
        if !matches!(m, 2 | 4 | 8) {
            return Err(PhyError::InvalidParameter("Miller M must be 2, 4, or 8"));
        }
        Ok(Self { m })
    }

    /// The Miller-4 encoder used by the paper's TDMA baseline.
    #[must_use]
    pub fn m4() -> Self {
        Self { m: 4 }
    }

    /// The subcarrier cycles per bit.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The chip pattern for one bit given the starting subcarrier phase,
    /// returning `(chips, ending_phase)`.
    ///
    /// Exposed so that soft (matched-filter) decoders can correlate received
    /// samples against the two candidate patterns instead of slicing each chip
    /// in isolation.
    pub fn bit_pattern(&self, bit: bool, phase: bool) -> (Vec<bool>, bool) {
        // Subcarrier: alternating chips, 2 chips per cycle.
        // Data "1": phase inversion in the middle of the bit.
        // Data "0": no mid-bit inversion (inversion at the boundary instead is
        // handled by the caller's running phase).
        let mut chips = Vec::with_capacity(2 * self.m);
        let mut level = phase;
        let half = self.m; // chips in half a bit = m (2m chips per bit total)
        for i in 0..(2 * self.m) {
            if bit && i == half {
                level = !level; // mid-bit phase inversion encodes "1"
            }
            chips.push(level);
            level = !level;
        }
        // The next bit starts from the level following the last chip; a data
        // "0" additionally inverts phase at the boundary (Miller rule: phase
        // inversion between two consecutive "0"s).
        let end_phase = if bit { level } else { !level };
        (chips, end_phase)
    }
}

impl LineCode for Miller {
    fn chips_per_bit(&self) -> usize {
        2 * self.m
    }

    fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let mut chips = Vec::with_capacity(bits.len() * 2 * self.m);
        let mut phase = true;
        for &bit in bits {
            let (mut c, next) = self.bit_pattern(bit, phase);
            chips.append(&mut c);
            phase = next;
        }
        chips
    }

    fn decode(&self, chips: &[bool]) -> PhyResult<Vec<bool>> {
        let per = self.chips_per_bit();
        if !chips.len().is_multiple_of(per) {
            return Err(PhyError::LengthMismatch {
                expected: (chips.len() / per + 1) * per,
                actual: chips.len(),
            });
        }
        // Correlate each bit period against the two candidate patterns for
        // both possible starting phases and pick the best match; track phase
        // forward like the encoder does.
        let mut bits = Vec::with_capacity(chips.len() / per);
        let mut phase = true;
        for window in chips.chunks_exact(per) {
            let (p1, next1) = self.bit_pattern(true, phase);
            let (p0, next0) = self.bit_pattern(false, phase);
            let score1 = window.iter().zip(&p1).filter(|(a, b)| a == b).count();
            let score0 = window.iter().zip(&p0).filter(|(a, b)| a == b).count();
            if score1 >= score0 {
                bits.push(true);
                phase = next1;
            } else {
                bits.push(false);
                phase = next0;
            }
        }
        Ok(bits)
    }

    fn transitions_per_bit(&self) -> f64 {
        // One transition per chip boundary within the bit: ≈ 2·M transitions.
        2.0 * self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backscatter_prng::{BitStream, Rng64, Xoshiro256};

    #[test]
    fn fm0_round_trip() {
        let code = Fm0::new();
        let mut stream = BitStream::seed_from_u64(1);
        let bits = stream.take_bits(256);
        let chips = code.encode(&bits);
        assert_eq!(chips.len(), 512);
        assert_eq!(code.decode(&chips).unwrap(), bits);
    }

    #[test]
    fn fm0_rejects_odd_chip_count() {
        assert!(Fm0::new().decode(&[true]).is_err());
    }

    #[test]
    fn fm0_always_inverts_at_bit_boundary() {
        let code = Fm0::new();
        let chips = code.encode(&[true, true, false, true]);
        // Chip at end of bit i must differ from chip at start of bit i+1.
        for i in 0..3 {
            assert_ne!(chips[2 * i + 1], chips[2 * i + 2]);
        }
    }

    #[test]
    fn miller_requires_valid_m() {
        assert!(Miller::new(3).is_err());
        assert!(Miller::new(2).is_ok());
        assert!(Miller::new(8).is_ok());
    }

    #[test]
    fn miller4_round_trip() {
        let code = Miller::m4();
        let mut stream = BitStream::seed_from_u64(2);
        let bits = stream.take_bits(200);
        let chips = code.encode(&bits);
        assert_eq!(chips.len(), 200 * 8);
        assert_eq!(code.decode(&chips).unwrap(), bits);
    }

    #[test]
    fn miller2_and_miller8_round_trip() {
        for m in [2usize, 8] {
            let code = Miller::new(m).unwrap();
            let mut stream = BitStream::seed_from_u64(m as u64);
            let bits = stream.take_bits(64);
            assert_eq!(code.decode(&code.encode(&bits)).unwrap(), bits);
        }
    }

    #[test]
    fn miller_rejects_partial_bit() {
        let code = Miller::m4();
        let chips = code.encode(&[true]);
        assert!(code.decode(&chips[..chips.len() - 1]).is_err());
    }

    #[test]
    fn miller_decode_survives_sparse_chip_errors() {
        // Miller-4's redundancy (8 chips/bit) lets the correlator absorb one
        // flipped chip per bit — the robustness property the paper's TDMA
        // baseline relies on.
        let code = Miller::m4();
        let bits = vec![true, false, false, true, true, false];
        let mut chips = code.encode(&bits);
        let mut rng = Xoshiro256::seed_from_u64(3);
        for b in 0..bits.len() {
            let idx = b * 8 + (rng.next_bounded(8) as usize);
            chips[idx] = !chips[idx];
        }
        assert_eq!(code.decode(&chips).unwrap(), bits);
    }

    #[test]
    fn transition_counts_reflect_energy_cost() {
        assert!(Miller::m4().transitions_per_bit() > Fm0::new().transitions_per_bit());
        assert_eq!(Miller::m4().transitions_per_bit(), 8.0);
    }

    #[test]
    fn chips_per_bit_values() {
        assert_eq!(Fm0::new().chips_per_bit(), 2);
        assert_eq!(Miller::m4().chips_per_bit(), 8);
        assert_eq!(Miller::new(2).unwrap().chips_per_bit(), 4);
    }
}
