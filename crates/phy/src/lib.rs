//! Backscatter physical-layer simulation.
//!
//! This crate is the "USRP + wireless channel" substitute for the Buzz paper's
//! hardware testbed.  It models the physical layer at the level the paper's
//! decoders operate on: complex baseband samples received by the reader while
//! one or more tags reflect the reader's continuous waveform.
//!
//! The model follows §2 of the paper:
//!
//! * tags use ON-OFF keying — a "1" bit reflects the carrier, a "0" bit leaves
//!   the antenna unmatched (silent),
//! * the channel of each tag is a **single complex tap** `h_i` (narrowband
//!   ≤ 640 kHz, negligible multipath),
//! * there is no carrier-frequency offset between tags because none of them
//!   generates its own carrier,
//! * tags are slot-synchronized by the reader's query, with a small initial
//!   offset jitter and a per-tag clock drift that can optionally be corrected.
//!
//! Module map:
//!
//! * [`complex`] — minimal `Complex` arithmetic (no external linear-algebra
//!   dependency),
//! * [`noise`] — additive white Gaussian noise via the Box–Muller transform,
//! * [`channel`] — single-tap channels, path loss, fading, near-far geometry,
//! * [`modulation`] — ON-OFF keying symbol mapping and superposition of
//!   concurrent tag reflections,
//! * [`linecode`] — FM0 and Miller-M baseband line codes used by EPC Gen-2,
//! * [`signal`] — IQ traces, level extraction, constellations, power
//!   detection (occupied/empty slot decisions),
//! * [`sync`] — initial-offset jitter and clock-drift models plus drift
//!   correction (reproduces the §8.1 microbenchmarks),
//! * [`snr`] — SNR bookkeeping and estimation helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod complex;
pub mod linecode;
pub mod modulation;
pub mod noise;
pub mod signal;
pub mod snr;
pub mod sync;

pub use channel::{Channel, ChannelModel, FadingModel, PathLoss};
pub use complex::Complex;
pub use linecode::{Fm0, LineCode, Miller};
pub use modulation::{superpose, OnOffKeying};
pub use noise::AwgnSource;
pub use signal::{Constellation, IqTrace, PowerDetector, SlotObservation};
pub use snr::{snr_db_to_linear, snr_linear_to_db, SnrEstimate};
pub use sync::{ClockModel, DriftCorrection, SyncJitter};

/// Errors produced by physical-layer operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyError {
    /// A signal-processing routine was handed vectors of mismatched length.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A parameter was outside its valid domain (e.g. a negative noise power).
    InvalidParameter(&'static str),
    /// An operation needed at least one sample/element but received none.
    Empty,
}

impl core::fmt::Display for PhyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PhyError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            PhyError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            PhyError::Empty => write!(f, "operation requires at least one element"),
        }
    }
}

impl std::error::Error for PhyError {}

/// Result alias for physical-layer operations.
pub type PhyResult<T> = Result<T, PhyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = PhyError::LengthMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 4"));
        assert!(PhyError::Empty.to_string().contains("at least one"));
        assert!(PhyError::InvalidParameter("snr")
            .to_string()
            .contains("snr"));
    }
}
