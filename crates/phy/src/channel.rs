//! Single-tap wireless channels for backscatter links.
//!
//! §2 of the paper argues that because backscatter nodes transmit in a narrow
//! bandwidth (≤ 640 kHz), multipath is negligible and the channel of each tag
//! is a **single complex number** `h_i`.  This module models how that number
//! arises from geometry (distance-based path loss on the round-trip
//! reader→tag→reader path), small-scale fading, and the tag's backscatter
//! (modulation) efficiency, and provides the diagonal channel matrix `H` used
//! throughout the decoders.

use backscatter_prng::{Rng64, Xoshiro256};

use crate::complex::Complex;
use crate::{PhyError, PhyResult};

/// Path-loss models for the round-trip backscatter link.
///
/// Backscatter links attenuate on *both* the forward (reader → tag) and
/// backward (tag → reader) paths, so the received backscatter power scales
/// roughly as `1/d^4` in free space ("radar equation" behaviour) — this is the
/// physical origin of the severe near-far effect the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathLoss {
    /// No attenuation (unit gain); useful for isolating coding behaviour.
    None,
    /// Free-space round trip: amplitude ∝ `(λ / 4πd)^2`, i.e. power ∝ `1/d^4`.
    FreeSpaceRoundTrip {
        /// Carrier wavelength in meters (≈ 0.324 m at 925 MHz).
        wavelength_m: f64,
    },
    /// Log-distance model with a configurable exponent applied to the
    /// round-trip power: `P_rx = P0 · (d0 / d)^exponent`.
    LogDistance {
        /// Reference distance in meters.
        reference_m: f64,
        /// Received power at the reference distance (linear).
        reference_power: f64,
        /// Path-loss exponent on the round-trip power (4.0 ≈ free space
        /// round trip, higher indoors).
        exponent: f64,
    },
}

impl PathLoss {
    /// Round-trip amplitude gain at distance `distance_m` (meters).
    ///
    /// Distances are clamped below at 1 cm to avoid singularities when a tag
    /// sits essentially on the reader antenna.
    #[must_use]
    pub fn amplitude_gain(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.01);
        match *self {
            PathLoss::None => 1.0,
            PathLoss::FreeSpaceRoundTrip { wavelength_m } => {
                let one_way = wavelength_m / (4.0 * core::f64::consts::PI * d);
                one_way * one_way
            }
            PathLoss::LogDistance {
                reference_m,
                reference_power,
                exponent,
            } => {
                let power = reference_power * (reference_m / d).powf(exponent);
                power.max(0.0).sqrt()
            }
        }
    }
}

/// Small-scale fading applied on top of the deterministic path loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FadingModel {
    /// No fading: the channel phase is still random (uniform) but the
    /// magnitude is exactly the path-loss gain.
    None,
    /// Rayleigh fading: the channel is a zero-mean complex Gaussian whose
    /// average power equals the path-loss power.
    Rayleigh,
    /// Rician fading with the given K-factor (ratio of line-of-sight power to
    /// scattered power).  Backscatter links usually have a strong LoS
    /// component, so K of 5–15 dB is typical.
    Rician {
        /// Linear (not dB) K-factor; larger means more line-of-sight.
        k_factor: f64,
    },
}

/// A complete channel model: path loss + fading + backscatter efficiency.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    path_loss: PathLoss,
    fading: FadingModel,
    /// Fraction of the incident carrier amplitude the tag re-radiates when its
    /// antenna is in the reflecting state (0 < η ≤ 1).
    backscatter_efficiency: f64,
    rng: Xoshiro256,
}

impl ChannelModel {
    /// Creates a channel model.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] if `backscatter_efficiency` is
    /// not in `(0, 1]`, or a Rician K-factor is negative.
    pub fn new(
        seed: u64,
        path_loss: PathLoss,
        fading: FadingModel,
        backscatter_efficiency: f64,
    ) -> PhyResult<Self> {
        if !(backscatter_efficiency > 0.0 && backscatter_efficiency <= 1.0) {
            return Err(PhyError::InvalidParameter(
                "backscatter efficiency must be in (0, 1]",
            ));
        }
        if let FadingModel::Rician { k_factor } = fading {
            if !(k_factor.is_finite() && k_factor >= 0.0) {
                return Err(PhyError::InvalidParameter(
                    "Rician K-factor must be finite and non-negative",
                ));
            }
        }
        Ok(Self {
            path_loss,
            fading,
            backscatter_efficiency,
            rng: Xoshiro256::seed_from_u64(seed),
        })
    }

    /// A convenient default: log-distance path loss calibrated so a tag at
    /// 0.6 m (≈ 2 feet, the Moo's typical range) has unit received amplitude,
    /// Rician fading with a strong LoS component, and 80 % backscatter
    /// efficiency.
    #[must_use]
    pub fn default_uhf(seed: u64) -> Self {
        Self::new(
            seed,
            PathLoss::LogDistance {
                reference_m: 0.6,
                reference_power: 1.0,
                exponent: 4.0,
            },
            FadingModel::Rician { k_factor: 10.0 },
            0.8,
        )
        .expect("default parameters are valid")
    }

    fn standard_normal(&mut self) -> f64 {
        let mut u1 = self.rng.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = self.rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Draws the single-tap channel coefficient for a tag at `distance_m`
    /// meters from the reader.
    pub fn draw(&mut self, distance_m: f64) -> Channel {
        let mean_amplitude =
            self.path_loss.amplitude_gain(distance_m) * self.backscatter_efficiency;
        let phase = self.rng.next_f64() * 2.0 * core::f64::consts::PI;
        let coefficient = match self.fading {
            FadingModel::None => Complex::from_polar(mean_amplitude, phase),
            FadingModel::Rayleigh => {
                // Zero-mean complex Gaussian with E[|h|^2] = mean_amplitude^2.
                let sigma = mean_amplitude / core::f64::consts::SQRT_2;
                Complex::new(
                    self.standard_normal() * sigma,
                    self.standard_normal() * sigma,
                )
            }
            FadingModel::Rician { k_factor } => {
                let total_power = mean_amplitude * mean_amplitude;
                let los_power = total_power * k_factor / (k_factor + 1.0);
                let scatter_power = total_power / (k_factor + 1.0);
                let los = Complex::from_polar(los_power.sqrt(), phase);
                let sigma = (scatter_power / 2.0).sqrt();
                los + Complex::new(
                    self.standard_normal() * sigma,
                    self.standard_normal() * sigma,
                )
            }
        };
        Channel { coefficient }
    }

    /// Draws channels for a set of tag distances, returning the diagonal of
    /// the channel matrix `H` in tag order.
    pub fn draw_many(&mut self, distances_m: &[f64]) -> Vec<Channel> {
        distances_m.iter().map(|&d| self.draw(d)).collect()
    }
}

/// The single-tap channel of one backscatter tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    /// The complex channel coefficient `h_i`.
    pub coefficient: Complex,
}

impl Channel {
    /// Creates a channel directly from a coefficient (used by tests and by the
    /// reader once it has *estimated* a channel).
    #[must_use]
    pub fn from_coefficient(coefficient: Complex) -> Self {
        Self { coefficient }
    }

    /// The received complex amplitude when the tag reflects (transmits a "1").
    #[must_use]
    pub fn reflected_amplitude(&self) -> Complex {
        self.coefficient
    }

    /// Channel power `|h|^2`.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.coefficient.norm_sqr()
    }

    /// Per-tag SNR in dB for a given total noise power.
    ///
    /// Returns `None` when the noise power is zero (infinite SNR).
    #[must_use]
    pub fn snr_db(&self, noise_power: f64) -> Option<f64> {
        if noise_power <= 0.0 {
            return None;
        }
        Some(10.0 * (self.power() / noise_power).log10())
    }
}

/// Builds the diagonal channel matrix `H` (as a vector of its diagonal) from a
/// list of channels.
#[must_use]
pub fn channel_diagonal(channels: &[Channel]) -> Vec<Complex> {
    channels.iter().map(|c| c.coefficient).collect()
}

/// Computes the dynamic range (max power / min power, in dB) across a set of
/// channels — a direct measure of the near-far effect.
///
/// # Errors
///
/// Returns [`PhyError::Empty`] when `channels` is empty, and
/// [`PhyError::InvalidParameter`] when the weakest channel has zero power.
pub fn near_far_spread_db(channels: &[Channel]) -> PhyResult<f64> {
    if channels.is_empty() {
        return Err(PhyError::Empty);
    }
    let max = channels.iter().map(Channel::power).fold(f64::MIN, f64::max);
    let min = channels.iter().map(Channel::power).fold(f64::MAX, f64::min);
    if min <= 0.0 {
        return Err(PhyError::InvalidParameter("weakest channel has zero power"));
    }
    Ok(10.0 * (max / min).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_loss_none_is_unit() {
        assert_eq!(PathLoss::None.amplitude_gain(123.0), 1.0);
    }

    #[test]
    fn free_space_round_trip_falls_as_distance_squared_in_amplitude() {
        let pl = PathLoss::FreeSpaceRoundTrip {
            wavelength_m: 0.324,
        };
        let g1 = pl.amplitude_gain(1.0);
        let g2 = pl.amplitude_gain(2.0);
        // Round-trip amplitude falls as 1/d^2 => doubling distance quarters it.
        assert!((g1 / g2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_reference_point() {
        let pl = PathLoss::LogDistance {
            reference_m: 0.6,
            reference_power: 1.0,
            exponent: 4.0,
        };
        assert!((pl.amplitude_gain(0.6) - 1.0).abs() < 1e-12);
        // Farther => weaker.
        assert!(pl.amplitude_gain(1.2) < pl.amplitude_gain(0.6));
    }

    #[test]
    fn distance_is_clamped() {
        let pl = PathLoss::FreeSpaceRoundTrip {
            wavelength_m: 0.324,
        };
        assert!(pl.amplitude_gain(0.0).is_finite());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ChannelModel::new(1, PathLoss::None, FadingModel::None, 0.0).is_err());
        assert!(ChannelModel::new(1, PathLoss::None, FadingModel::None, 1.5).is_err());
        assert!(ChannelModel::new(
            1,
            PathLoss::None,
            FadingModel::Rician { k_factor: -1.0 },
            0.5
        )
        .is_err());
    }

    #[test]
    fn no_fading_magnitude_is_deterministic() {
        let mut m = ChannelModel::new(5, PathLoss::None, FadingModel::None, 0.5).unwrap();
        for _ in 0..10 {
            let ch = m.draw(1.0);
            assert!((ch.coefficient.abs() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn rayleigh_average_power_matches_path_loss() {
        let mut m = ChannelModel::new(11, PathLoss::None, FadingModel::Rayleigh, 1.0).unwrap();
        let n = 50_000;
        let avg: f64 = (0..n).map(|_| m.draw(1.0).power()).sum::<f64>() / n as f64;
        assert!((avg - 1.0).abs() < 0.05, "avg = {avg}");
    }

    #[test]
    fn rician_average_power_matches_path_loss() {
        let mut m = ChannelModel::new(
            13,
            PathLoss::None,
            FadingModel::Rician { k_factor: 10.0 },
            1.0,
        )
        .unwrap();
        let n = 50_000;
        let avg: f64 = (0..n).map(|_| m.draw(1.0).power()).sum::<f64>() / n as f64;
        assert!((avg - 1.0).abs() < 0.05, "avg = {avg}");
    }

    #[test]
    fn farther_tags_are_weaker_on_average() {
        let mut m = ChannelModel::default_uhf(17);
        let n = 2_000;
        let near: f64 = (0..n).map(|_| m.draw(0.3).power()).sum::<f64>() / n as f64;
        let far: f64 = (0..n).map(|_| m.draw(1.8).power()).sum::<f64>() / n as f64;
        assert!(near > far * 10.0, "near = {near}, far = {far}");
    }

    #[test]
    fn snr_db_reports_relative_to_noise() {
        let ch = Channel::from_coefficient(Complex::new(1.0, 0.0));
        assert!((ch.snr_db(0.1).unwrap() - 10.0).abs() < 1e-9);
        assert!(ch.snr_db(0.0).is_none());
    }

    #[test]
    fn near_far_spread() {
        let chans = vec![
            Channel::from_coefficient(Complex::new(1.0, 0.0)),
            Channel::from_coefficient(Complex::new(0.1, 0.0)),
        ];
        let spread = near_far_spread_db(&chans).unwrap();
        assert!((spread - 20.0).abs() < 1e-9);
        assert!(near_far_spread_db(&[]).is_err());
    }

    #[test]
    fn draw_many_preserves_order_and_length() {
        let mut m = ChannelModel::default_uhf(23);
        let chans = m.draw_many(&[0.3, 0.6, 1.2]);
        assert_eq!(chans.len(), 3);
        let diag = channel_diagonal(&chans);
        assert_eq!(diag.len(), 3);
        assert_eq!(diag[0], chans[0].coefficient);
    }
}
