//! Synchronization imperfections: initial offset jitter and clock drift.
//!
//! §8.1 of the paper measures two imperfections on real tags and shows they
//! are small enough for Buzz to work:
//!
//! * **initial offset** — the jitter in when each tag detects the reader's
//!   trigger and starts transmitting: 90th percentile 0.3 µs for commercial
//!   tags and 0.5 µs for the Moo, maximum below 1 µs (Fig. 7),
//! * **clock drift** — each tag's digital clock runs slightly fast or slow;
//!   without correction two tags drift apart by ~50 % of a symbol after 2 ms
//!   at 80 kbps (Fig. 8a), and a one-time drift estimate against the reader's
//!   virtual clock realigns them (Fig. 8b).
//!
//! The simulator draws per-tag offsets and drifts from these models and the
//! decoders can optionally be stressed with them.

use backscatter_prng::{Rng64, Xoshiro256};

use crate::{PhyError, PhyResult};

/// Distribution of the initial trigger-detection offset of a tag population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncJitter {
    /// Scale parameter: offsets are drawn as `scale_us · |half-normal|`,
    /// truncated at `max_us`.
    pub scale_us: f64,
    /// Hard maximum offset in microseconds (tags that miss the trigger by
    /// more than this simply do not participate in the slot).
    pub max_us: f64,
}

impl SyncJitter {
    /// Jitter profile matching the paper's commercial (Alien) tags:
    /// 90th percentile ≈ 0.3 µs, max < 1 µs.
    #[must_use]
    pub fn commercial() -> Self {
        // For a half-normal, the 90th percentile is ≈ 1.645·σ.
        Self {
            scale_us: 0.3 / 1.645,
            max_us: 1.0,
        }
    }

    /// Jitter profile matching the Moo computational RFIDs:
    /// 90th percentile ≈ 0.5 µs, max < 1 µs.
    #[must_use]
    pub fn moo() -> Self {
        Self {
            scale_us: 0.5 / 1.645,
            max_us: 1.0,
        }
    }

    /// Draws one offset in microseconds.
    pub fn draw_us(&self, rng: &mut Xoshiro256) -> f64 {
        // Half-normal via |Box-Muller|.
        let mut u1 = rng.next_f64();
        if u1 <= f64::MIN_POSITIVE {
            u1 = f64::MIN_POSITIVE;
        }
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        (z.abs() * self.scale_us).min(self.max_us)
    }

    /// Draws offsets for `n` tags.
    pub fn draw_many_us(&self, rng: &mut Xoshiro256, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.draw_us(rng)).collect()
    }
}

/// Computes the empirical CDF of a set of offsets, returning sorted
/// `(offset_us, fraction ≤ offset)` pairs — the series plotted in Fig. 7.
///
/// # Errors
///
/// Returns [`PhyError::Empty`] for an empty input.
pub fn offset_cdf(offsets_us: &[f64]) -> PhyResult<Vec<(f64, f64)>> {
    if offsets_us.is_empty() {
        return Err(PhyError::Empty);
    }
    let mut sorted = offsets_us.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    Ok(sorted
        .into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect())
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of a set of offsets.
///
/// # Errors
///
/// Returns [`PhyError::Empty`] for an empty input and
/// [`PhyError::InvalidParameter`] for a quantile outside `[0, 1]`.
pub fn offset_quantile(offsets_us: &[f64], q: f64) -> PhyResult<f64> {
    if offsets_us.is_empty() {
        return Err(PhyError::Empty);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(PhyError::InvalidParameter("quantile must be in [0, 1]"));
    }
    let mut sorted = offsets_us.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Ok(sorted[idx])
}

/// A tag's digital clock: nominal tick rate plus a fixed relative drift.
///
/// Drift is expressed in parts-per-million; the Moo's MSP430 clock is stable
/// to within a few hundred ppm, and the paper notes the drift of each tag "is
/// fairly stable" so a one-time estimate suffices for correction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    /// Relative drift in parts-per-million (positive = clock runs fast).
    pub drift_ppm: f64,
}

impl ClockModel {
    /// Creates a clock with the given drift.
    #[must_use]
    pub fn new(drift_ppm: f64) -> Self {
        Self { drift_ppm }
    }

    /// Draws a clock whose drift is uniform in `[-max_ppm, +max_ppm]`.
    pub fn draw(rng: &mut Xoshiro256, max_ppm: f64) -> Self {
        Self::new((rng.next_f64() * 2.0 - 1.0) * max_ppm)
    }

    /// How far (in microseconds) this clock has drifted from true time after
    /// `elapsed_us` microseconds.
    #[must_use]
    pub fn accumulated_drift_us(&self, elapsed_us: f64) -> f64 {
        elapsed_us * self.drift_ppm * 1e-6
    }

    /// The misalignment, as a fraction of a symbol, between this clock and an
    /// ideal clock after `elapsed_us`, for a given symbol duration.
    #[must_use]
    pub fn misalignment_fraction(&self, elapsed_us: f64, symbol_us: f64) -> f64 {
        (self.accumulated_drift_us(elapsed_us) / symbol_us).abs()
    }
}

/// The reader-driven drift-correction procedure of §8.1.
///
/// The tag counts its own clock ticks between two reader pulses separated by a
/// known interval; the ratio of counted to expected ticks estimates the drift,
/// and the tag subsequently inserts (or skips) ticks to compensate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftCorrection {
    /// The estimated drift in ppm (what the tag measured).
    pub estimated_ppm: f64,
}

impl DriftCorrection {
    /// Estimates a tag clock's drift by counting ticks over a calibration
    /// interval, quantized to whole ticks — which is why the correction is
    /// good but not perfect.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::InvalidParameter`] for non-positive interval or
    /// tick rate.
    pub fn calibrate(clock: ClockModel, interval_us: f64, tick_rate_hz: f64) -> PhyResult<Self> {
        if !(interval_us > 0.0 && tick_rate_hz > 0.0) {
            return Err(PhyError::InvalidParameter(
                "calibration interval and tick rate must be positive",
            ));
        }
        let expected_ticks = interval_us * 1e-6 * tick_rate_hz;
        // The tag's clock runs at (1 + drift) of nominal, so it counts more
        // (or fewer) ticks in the same true interval; counting quantizes.
        let counted_ticks = (expected_ticks * (1.0 + clock.drift_ppm * 1e-6)).round();
        let estimated = (counted_ticks / expected_ticks - 1.0) * 1e6;
        Ok(Self {
            estimated_ppm: estimated,
        })
    }

    /// The residual drift (ppm) left after applying this correction to a
    /// clock.
    #[must_use]
    pub fn residual_ppm(&self, clock: ClockModel) -> f64 {
        clock.drift_ppm - self.estimated_ppm
    }

    /// Residual misalignment, as a fraction of a symbol, after `elapsed_us`
    /// with this correction applied.
    #[must_use]
    pub fn residual_misalignment_fraction(
        &self,
        clock: ClockModel,
        elapsed_us: f64,
        symbol_us: f64,
    ) -> f64 {
        (elapsed_us * self.residual_ppm(clock) * 1e-6 / symbol_us).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_profiles_match_paper_percentiles() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let moo = SyncJitter::moo().draw_many_us(&mut rng, 20_000);
        let commercial = SyncJitter::commercial().draw_many_us(&mut rng, 20_000);
        let moo_p90 = offset_quantile(&moo, 0.9).unwrap();
        let com_p90 = offset_quantile(&commercial, 0.9).unwrap();
        assert!((moo_p90 - 0.5).abs() < 0.08, "moo p90 = {moo_p90}");
        assert!((com_p90 - 0.3).abs() < 0.08, "commercial p90 = {com_p90}");
        assert!(moo.iter().chain(&commercial).all(|&x| x < 1.0 + 1e-12));
    }

    #[test]
    fn offsets_are_nonnegative() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        assert!(SyncJitter::moo()
            .draw_many_us(&mut rng, 1000)
            .iter()
            .all(|&x| x >= 0.0));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let offs = SyncJitter::commercial().draw_many_us(&mut rng, 500);
        let cdf = offset_cdf(&offs).unwrap();
        assert_eq!(cdf.len(), 500);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(offset_cdf(&[]).is_err());
    }

    #[test]
    fn quantile_validates_inputs() {
        assert!(offset_quantile(&[], 0.5).is_err());
        assert!(offset_quantile(&[1.0], 1.5).is_err());
        assert_eq!(offset_quantile(&[3.0, 1.0, 2.0], 0.0).unwrap(), 1.0);
        assert_eq!(offset_quantile(&[3.0, 1.0, 2.0], 1.0).unwrap(), 3.0);
    }

    #[test]
    fn uncorrected_drift_reproduces_fig8a() {
        // Fig. 8a: at 80 kbps (12.5 µs symbols) two tags drift ~50 % of a
        // symbol apart after 2 ms.  A relative drift of ~3000 ppm between the
        // tags produces that; model each tag at ±1560 ppm.
        let fast = ClockModel::new(1560.0);
        let slow = ClockModel::new(-1560.0);
        let relative_us = fast.accumulated_drift_us(2000.0) - slow.accumulated_drift_us(2000.0);
        let fraction = relative_us / 12.5;
        assert!((fraction - 0.5).abs() < 0.01, "fraction = {fraction}");
    }

    #[test]
    fn corrected_drift_stays_aligned() {
        // After calibration against the reader clock, residual misalignment at
        // 2 ms must be a small fraction of a symbol (Fig. 8b).
        let clock = ClockModel::new(1560.0);
        let corr = DriftCorrection::calibrate(clock, 10_000.0, 1.0e6).unwrap();
        let resid = corr.residual_misalignment_fraction(clock, 2000.0, 12.5);
        assert!(resid < 0.02, "residual fraction = {resid}");
    }

    #[test]
    fn calibrate_validates_inputs() {
        let clock = ClockModel::new(100.0);
        assert!(DriftCorrection::calibrate(clock, 0.0, 1.0e6).is_err());
        assert!(DriftCorrection::calibrate(clock, 10.0, 0.0).is_err());
    }

    #[test]
    fn drawn_clocks_are_bounded() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..1000 {
            let c = ClockModel::draw(&mut rng, 2000.0);
            assert!(c.drift_ppm.abs() <= 2000.0);
        }
    }

    #[test]
    fn misalignment_grows_linearly() {
        let c = ClockModel::new(1000.0);
        let m1 = c.misalignment_fraction(1000.0, 12.5);
        let m2 = c.misalignment_fraction(2000.0, 12.5);
        assert!((m2 - 2.0 * m1).abs() < 1e-12);
    }
}
