//! Signal-to-noise-ratio bookkeeping and estimation.
//!
//! The Fig. 12 experiment sweeps channel quality and reports per-location SNR
//! ranges; this module provides dB/linear conversions and a simple
//! decision-directed SNR estimator the reader can run on a decoded slot
//! stream.

use crate::complex::Complex;
use crate::{PhyError, PhyResult};

/// Converts an SNR in dB to a linear power ratio.
#[must_use]
pub fn snr_db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear power ratio to dB.
///
/// Returns negative infinity for a non-positive ratio.
#[must_use]
pub fn snr_linear_to_db(linear: f64) -> f64 {
    if linear <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * linear.log10()
    }
}

/// An SNR estimate with its measurement basis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrEstimate {
    /// Estimated signal power.
    pub signal_power: f64,
    /// Estimated noise power.
    pub noise_power: f64,
}

impl SnrEstimate {
    /// The estimate in dB; `None` when the noise estimate is zero.
    #[must_use]
    pub fn db(&self) -> Option<f64> {
        if self.noise_power <= 0.0 {
            None
        } else {
            Some(snr_linear_to_db(self.signal_power / self.noise_power))
        }
    }

    /// Estimates SNR from received symbols and the corresponding known
    /// (reconstructed) noiseless symbols: signal power is the mean power of
    /// the reference, noise power the mean power of the residual.
    ///
    /// # Errors
    ///
    /// Returns [`PhyError::LengthMismatch`] when the slices differ in length
    /// and [`PhyError::Empty`] when they are empty.
    pub fn from_reference(received: &[Complex], reference: &[Complex]) -> PhyResult<Self> {
        if received.len() != reference.len() {
            return Err(PhyError::LengthMismatch {
                expected: reference.len(),
                actual: received.len(),
            });
        }
        if received.is_empty() {
            return Err(PhyError::Empty);
        }
        let n = received.len() as f64;
        let signal_power = reference.iter().map(|s| s.norm_sqr()).sum::<f64>() / n;
        let noise_power = received
            .iter()
            .zip(reference)
            .map(|(&r, &s)| (r - s).norm_sqr())
            .sum::<f64>()
            / n;
        Ok(Self {
            signal_power,
            noise_power,
        })
    }
}

/// A labelled SNR range, matching how Fig. 12 reports channel quality per
/// location (e.g. "(19–26) dB").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrRange {
    /// Lower edge in dB.
    pub low_db: f64,
    /// Upper edge in dB.
    pub high_db: f64,
}

impl SnrRange {
    /// Creates a range, swapping the edges if given in the wrong order.
    #[must_use]
    pub fn new(low_db: f64, high_db: f64) -> Self {
        if low_db <= high_db {
            Self { low_db, high_db }
        } else {
            Self {
                low_db: high_db,
                high_db: low_db,
            }
        }
    }

    /// The midpoint of the range in dB.
    #[must_use]
    pub fn midpoint_db(&self) -> f64 {
        (self.low_db + self.high_db) / 2.0
    }

    /// Whether a value falls inside the range (inclusive).
    #[must_use]
    pub fn contains(&self, db: f64) -> bool {
        db >= self.low_db && db <= self.high_db
    }
}

impl core::fmt::Display for SnrRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({:.0}-{:.0}) dB", self.low_db, self.high_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_linear_round_trip() {
        for db in [-10.0, 0.0, 3.0, 10.0, 26.0] {
            let lin = snr_db_to_linear(db);
            assert!((snr_linear_to_db(lin) - db).abs() < 1e-9);
        }
        assert_eq!(snr_linear_to_db(0.0), f64::NEG_INFINITY);
        assert!((snr_db_to_linear(10.0) - 10.0).abs() < 1e-12);
        assert!((snr_db_to_linear(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_from_reference() {
        let reference = vec![Complex::ONE; 100];
        // Received = reference + constant error of magnitude 0.1.
        let received: Vec<Complex> = reference
            .iter()
            .map(|&s| s + Complex::new(0.1, 0.0))
            .collect();
        let est = SnrEstimate::from_reference(&received, &reference).unwrap();
        assert!((est.signal_power - 1.0).abs() < 1e-12);
        assert!((est.noise_power - 0.01).abs() < 1e-12);
        assert!((est.db().unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_validates_inputs() {
        assert!(SnrEstimate::from_reference(&[], &[]).is_err());
        assert!(SnrEstimate::from_reference(&[Complex::ONE], &[]).is_err());
    }

    #[test]
    fn perfect_reception_has_no_db() {
        let reference = vec![Complex::ONE; 10];
        let est = SnrEstimate::from_reference(&reference, &reference).unwrap();
        assert!(est.db().is_none());
    }

    #[test]
    fn snr_range_behaviour() {
        let r = SnrRange::new(26.0, 19.0);
        assert_eq!(r.low_db, 19.0);
        assert_eq!(r.high_db, 26.0);
        assert!((r.midpoint_db() - 22.5).abs() < 1e-12);
        assert!(r.contains(20.0));
        assert!(!r.contains(30.0));
        assert_eq!(format!("{r}"), "(19-26) dB");
    }
}
