//! Minimal complex-number arithmetic.
//!
//! The reader's baseband samples, the per-tag channel coefficients `h_i`, and
//! every intermediate quantity in the compressive-sensing and
//! belief-propagation decoders are complex numbers.  Rather than pulling in a
//! numerical crate, this module provides the small amount of complex
//! arithmetic the workspace needs, with `f64` components throughout.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a complex number from polar coordinates (magnitude, phase in
    /// radians).
    #[must_use]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Self {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// The complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// The squared magnitude `|z|^2` (avoids the square root of
    /// [`Complex::abs`]).
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// The phase (argument) in radians, in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse.  Returns [`Complex::ZERO`] for a zero
    /// input rather than producing NaNs, so callers can treat "no channel" as
    /// an erased measurement.
    #[must_use]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        if d == 0.0 {
            return Complex::ZERO;
        }
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns true when both components are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by multiplication with the inverse is the definition here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        if rhs == 0.0 {
            Complex::ZERO
        } else {
            self.scale(1.0 / rhs)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl core::fmt::Display for Complex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// Computes the inner product `⟨a, b⟩ = Σ a_i · conj(b_i)`.
///
/// # Errors
///
/// Returns [`crate::PhyError::LengthMismatch`] when the slices differ in
/// length.
pub fn inner_product(a: &[Complex], b: &[Complex]) -> crate::PhyResult<Complex> {
    if a.len() != b.len() {
        return Err(crate::PhyError::LengthMismatch {
            expected: a.len(),
            actual: b.len(),
        });
    }
    Ok(a.iter().zip(b).map(|(&x, &y)| x * y.conj()).sum())
}

/// Computes the squared Euclidean norm `‖v‖²` of a complex vector.
#[must_use]
pub fn norm_sqr(v: &[Complex]) -> f64 {
    v.iter().map(|z| z.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_mul() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
    }

    #[test]
    fn division_round_trips() {
        let a = Complex::new(2.5, -1.5);
        let b = Complex::new(-0.5, 4.0);
        let q = a / b;
        let back = q * b;
        assert!(close(back.re, a.re) && close(back.im, a.im));
    }

    #[test]
    fn division_by_zero_is_zero() {
        let a = Complex::new(1.0, 1.0);
        assert_eq!(a / Complex::ZERO, Complex::ZERO);
        assert_eq!(a / 0.0, Complex::ZERO);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!(close(z.abs(), 2.0));
        assert!(close(z.arg(), 0.7));
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.norm_sqr(), 25.0));
        assert!(close(z.abs(), 5.0));
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert!(close((z * z.conj()).re, 25.0));
    }

    #[test]
    fn inner_product_matches_manual() {
        let a = [Complex::new(1.0, 0.0), Complex::new(0.0, 1.0)];
        let b = [Complex::new(1.0, 1.0), Complex::new(2.0, 0.0)];
        // ⟨a,b⟩ = 1*(1-1i) + i*(2) = 1 - i + 2i = 1 + i
        let ip = inner_product(&a, &b).unwrap();
        assert!(close(ip.re, 1.0) && close(ip.im, 1.0));
    }

    #[test]
    fn inner_product_length_mismatch_errors() {
        let a = [Complex::ONE];
        let b = [Complex::ONE, Complex::ONE];
        assert!(inner_product(&a, &b).is_err());
    }

    #[test]
    fn vector_norm() {
        let v = [Complex::new(3.0, 0.0), Complex::new(0.0, 4.0)];
        assert!(close(norm_sqr(&v), 25.0));
    }

    #[test]
    fn sum_folds_to_total() {
        let total: Complex = (1..=4).map(|i| Complex::new(i as f64, -(i as f64))).sum();
        assert_eq!(total, Complex::new(10.0, -10.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-2.000000i");
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.000000+2.000000i");
    }
}
