//! ON-OFF keying modulation and collision superposition.
//!
//! A backscatter tag conveys a "1" by switching its antenna impedance to
//! reflect the reader's carrier and a "0" by staying silent (§2).  At the
//! reader, the received baseband sample in a slot is the *sum* of the
//! reflections of all tags that transmitted a "1" in that slot, each weighted
//! by its channel coefficient, plus the static environmental reflection
//! (carrier leakage) and noise:
//!
//! ```text
//!     y = leak + Σ_i  h_i · b_i   + n
//! ```
//!
//! This module produces those samples, one per symbol, which is exactly the
//! granularity the Buzz decoders work at.  Sample-accurate waveforms (many
//! samples per bit, for the Fig. 2/8 style plots) are produced by
//! [`crate::signal::IqTrace`].

use crate::channel::Channel;
use crate::complex::Complex;
use crate::{PhyError, PhyResult};

/// ON-OFF keying symbol mapper for a single tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnOffKeying {
    /// The tag's channel coefficient.
    pub channel: Channel,
}

impl OnOffKeying {
    /// Creates a mapper for a tag with the given channel.
    #[must_use]
    pub fn new(channel: Channel) -> Self {
        Self { channel }
    }

    /// Maps one bit to the tag's contribution to the received sample.
    #[must_use]
    pub fn map_bit(&self, bit: bool) -> Complex {
        if bit {
            self.channel.reflected_amplitude()
        } else {
            Complex::ZERO
        }
    }

    /// Maps a bit string to the tag's contribution per symbol.
    #[must_use]
    pub fn map_bits(&self, bits: &[bool]) -> Vec<Complex> {
        bits.iter().map(|&b| self.map_bit(b)).collect()
    }
}

/// Superposes the per-symbol transmissions of several tags into the received
/// symbol stream (no noise, no leakage — those are added by the caller).
///
/// `contributions[i]` is tag `i`'s symbol stream; all streams must have the
/// same length.
///
/// # Errors
///
/// Returns [`PhyError::Empty`] if no tag streams are given and
/// [`PhyError::LengthMismatch`] if the streams disagree in length.
pub fn superpose(contributions: &[Vec<Complex>]) -> PhyResult<Vec<Complex>> {
    let first = contributions.first().ok_or(PhyError::Empty)?;
    let len = first.len();
    for c in contributions {
        if c.len() != len {
            return Err(PhyError::LengthMismatch {
                expected: len,
                actual: c.len(),
            });
        }
    }
    let mut out = vec![Complex::ZERO; len];
    for stream in contributions {
        for (acc, &s) in out.iter_mut().zip(stream) {
            *acc += s;
        }
    }
    Ok(out)
}

/// Superposes tags that each transmit a (possibly different) bit per symbol:
/// `bits[i][j]` is tag `i`'s bit in symbol `j`.
///
/// This is the collision channel of Eq. 7 in the paper,
/// `y_j = Σ_i h_i · b_{i,j}`, evaluated symbol by symbol.
///
/// # Errors
///
/// Propagates the errors of [`superpose`]; additionally returns
/// [`PhyError::LengthMismatch`] if `channels` and `bits` have different
/// numbers of tags.
pub fn collide(channels: &[Channel], bits: &[Vec<bool>]) -> PhyResult<Vec<Complex>> {
    if channels.len() != bits.len() {
        return Err(PhyError::LengthMismatch {
            expected: channels.len(),
            actual: bits.len(),
        });
    }
    if channels.is_empty() {
        return Err(PhyError::Empty);
    }
    let streams: Vec<Vec<Complex>> = channels
        .iter()
        .zip(bits)
        .map(|(ch, b)| OnOffKeying::new(*ch).map_bits(b))
        .collect();
    superpose(&streams)
}

/// The constant environmental reflection (carrier leakage plus static clutter)
/// seen by the reader even when every tag is silent.
///
/// The levels in Fig. 2 of the paper ride on top of such a baseline: a single
/// tag produces *two* received levels (baseline and baseline + |h|), not zero
/// and |h|.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarrierLeakage {
    /// Complex baseline added to every received sample.
    pub baseline: Complex,
}

impl CarrierLeakage {
    /// Creates a leakage term.
    #[must_use]
    pub fn new(baseline: Complex) -> Self {
        Self { baseline }
    }

    /// A typical normalized baseline: strong in-phase leakage.
    #[must_use]
    pub fn typical() -> Self {
        Self::new(Complex::new(1.4, -1.2))
    }

    /// Adds the baseline to every symbol in place.
    pub fn apply(&self, symbols: &mut [Complex]) {
        for s in symbols {
            *s += self.baseline;
        }
    }

    /// Removes the baseline (what the reader does after estimating it from
    /// silent slots).
    pub fn remove(&self, symbols: &mut [Complex]) {
        for s in symbols {
            *s -= self.baseline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(re: f64, im: f64) -> Channel {
        Channel::from_coefficient(Complex::new(re, im))
    }

    #[test]
    fn ook_maps_zero_to_silence() {
        let ook = OnOffKeying::new(ch(0.5, -0.25));
        assert_eq!(ook.map_bit(false), Complex::ZERO);
        assert_eq!(ook.map_bit(true), Complex::new(0.5, -0.25));
    }

    #[test]
    fn map_bits_length() {
        let ook = OnOffKeying::new(ch(1.0, 0.0));
        let out = ook.map_bits(&[true, false, true]);
        assert_eq!(out, vec![Complex::ONE, Complex::ZERO, Complex::ONE]);
    }

    #[test]
    fn superpose_adds_streams() {
        let a = vec![Complex::ONE, Complex::ZERO];
        let b = vec![Complex::new(0.0, 1.0), Complex::new(0.0, 1.0)];
        let sum = superpose(&[a, b]).unwrap();
        assert_eq!(sum, vec![Complex::new(1.0, 1.0), Complex::new(0.0, 1.0)]);
    }

    #[test]
    fn superpose_rejects_mismatched_lengths() {
        let a = vec![Complex::ONE];
        let b = vec![Complex::ONE, Complex::ONE];
        assert!(matches!(
            superpose(&[a, b]),
            Err(PhyError::LengthMismatch { .. })
        ));
        assert!(matches!(superpose(&[]), Err(PhyError::Empty)));
    }

    #[test]
    fn two_tag_collision_produces_four_levels() {
        // This is the Fig. 2(b)/Fig. 3(b) observation: two colliding tags
        // produce four distinct received values ("00", "01", "10", "11").
        let channels = [ch(1.0, 0.0), ch(0.0, 0.6)];
        let bits = vec![
            vec![false, false, true, true],
            vec![false, true, false, true],
        ];
        let y = collide(&channels, &bits).unwrap();
        assert_eq!(y.len(), 4);
        // All four received values are distinct.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!((y[i] - y[j]).abs() > 1e-9, "levels {i} and {j} collide");
            }
        }
        // And the "11" value is the sum of the two channels.
        assert_eq!(y[3], Complex::new(1.0, 0.6));
    }

    #[test]
    fn collide_checks_tag_count() {
        let channels = [ch(1.0, 0.0)];
        let bits = vec![vec![true], vec![false]];
        assert!(collide(&channels, &bits).is_err());
        assert!(collide(&[], &[]).is_err());
    }

    #[test]
    fn leakage_apply_remove_round_trip() {
        let leak = CarrierLeakage::typical();
        let mut symbols = vec![Complex::ONE, Complex::ZERO, Complex::new(0.3, 0.3)];
        let original = symbols.clone();
        leak.apply(&mut symbols);
        assert_ne!(symbols, original);
        leak.remove(&mut symbols);
        for (a, b) in symbols.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
