//! Reader commands and their air lengths.
//!
//! Only the command structure relevant to inventory and to Buzz's protocol
//! triggers is modelled; payload field semantics beyond length are not needed
//! by the evaluation.

/// A reader → tag command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReaderCommand {
    /// `Query`: starts an inventory round announcing the frame size exponent
    /// `Q` (22 bits on the air).
    Query {
        /// Frame-size exponent: the frame has `2^q` slots.
        q: u8,
    },
    /// `QueryRep`: advances to the next slot within a round (4 bits).
    QueryRep,
    /// `QueryAdjust`: starts a new round with an adjusted `Q` (9 bits).
    QueryAdjust {
        /// The new frame-size exponent.
        q: u8,
    },
    /// `ACK`: acknowledges a tag's RN16, echoing it back (18 bits).
    Ack,
    /// Buzz trigger: a single broadcast command that starts one of Buzz's
    /// phases (estimation, bucket, compressive sensing, or data).  Modelled at
    /// the length of a `Query`.
    BuzzTrigger,
    /// Buzz stop: the reader simply drops its carrier; no bits are
    /// transmitted, but tags need roughly one downlink bit time to notice.
    BuzzStop,
}

impl ReaderCommand {
    /// The command length in downlink bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        match self {
            ReaderCommand::Query { .. } => 22,
            ReaderCommand::QueryRep => 4,
            ReaderCommand::QueryAdjust { .. } => 9,
            ReaderCommand::Ack => 18,
            ReaderCommand::BuzzTrigger => 22,
            ReaderCommand::BuzzStop => 1,
        }
    }

    /// The frame-size exponent carried by the command, if any.
    #[must_use]
    pub fn q(&self) -> Option<u8> {
        match self {
            ReaderCommand::Query { q } | ReaderCommand::QueryAdjust { q } => Some(*q),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_lengths_match_standard() {
        assert_eq!(ReaderCommand::Query { q: 4 }.bits(), 22);
        assert_eq!(ReaderCommand::QueryRep.bits(), 4);
        assert_eq!(ReaderCommand::QueryAdjust { q: 5 }.bits(), 9);
        assert_eq!(ReaderCommand::Ack.bits(), 18);
    }

    #[test]
    fn buzz_commands_have_lengths() {
        assert_eq!(ReaderCommand::BuzzTrigger.bits(), 22);
        assert_eq!(ReaderCommand::BuzzStop.bits(), 1);
    }

    #[test]
    fn q_extraction() {
        assert_eq!(ReaderCommand::Query { q: 4 }.q(), Some(4));
        assert_eq!(ReaderCommand::QueryAdjust { q: 7 }.q(), Some(7));
        assert_eq!(ReaderCommand::Ack.q(), None);
        assert_eq!(ReaderCommand::QueryRep.q(), None);
    }
}
