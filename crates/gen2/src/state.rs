//! The tag-side inventory state machine.
//!
//! A Gen-2 tag participating in an inventory round moves through a small set
//! of states driven by reader commands and its own slot counter.  The paper's
//! FSA baseline only needs the inventory portion (Ready → Arbitrate → Reply →
//! Acknowledged), which is modelled here; access-state commands (Req_RN,
//! Read, Write…) are outside the evaluation's scope.

use backscatter_prng::{Rng64, Xoshiro256};

use crate::commands::ReaderCommand;

/// The inventory states of a Gen-2 tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InventoryState {
    /// Energized but not yet participating in a round.
    Ready,
    /// Participating: counting down its slot counter.
    Arbitrate,
    /// Its slot has arrived: backscattering its RN16 and waiting for an ACK.
    Reply,
    /// Its RN16 was acknowledged: it has been identified this round.
    Acknowledged,
}

/// A tag's inventory state machine.
#[derive(Debug, Clone)]
pub struct TagStateMachine {
    state: InventoryState,
    slot_counter: u32,
    rng: Xoshiro256,
    /// The RN16 the tag backscatters when its slot arrives.
    rn16: u16,
}

impl TagStateMachine {
    /// Creates a tag in the `Ready` state with a deterministic per-tag seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let rn16 = rng.next_u64() as u16;
        Self {
            state: InventoryState::Ready,
            slot_counter: 0,
            rng,
            rn16,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> InventoryState {
        self.state
    }

    /// The tag's current RN16.
    #[must_use]
    pub fn rn16(&self) -> u16 {
        self.rn16
    }

    /// The remaining slot count (meaningful in `Arbitrate`).
    #[must_use]
    pub fn slot_counter(&self) -> u32 {
        self.slot_counter
    }

    /// Whether the tag backscatters its RN16 in the current slot.
    #[must_use]
    pub fn is_replying(&self) -> bool {
        self.state == InventoryState::Reply
    }

    /// Processes a reader command, updating the state machine.
    ///
    /// `acked_rn16` carries the RN16 echoed by an `ACK` command so the tag can
    /// check whether it is the one being acknowledged.
    pub fn on_command(&mut self, command: ReaderCommand, acked_rn16: Option<u16>) {
        match command {
            ReaderCommand::Query { q } | ReaderCommand::QueryAdjust { q } => {
                // A new round: tags that were already acknowledged stay out of
                // it (single-round inventory, matching the identification
                // experiment where each tag must be identified once).
                if self.state == InventoryState::Acknowledged {
                    return;
                }
                let frame = 1u64 << q.min(15);
                self.slot_counter = self.rng.next_bounded(frame) as u32;
                self.rn16 = self.rng.next_u64() as u16;
                self.state = if self.slot_counter == 0 {
                    InventoryState::Reply
                } else {
                    InventoryState::Arbitrate
                };
            }
            ReaderCommand::QueryRep => {
                match self.state {
                    InventoryState::Arbitrate => {
                        self.slot_counter = self.slot_counter.saturating_sub(1);
                        if self.slot_counter == 0 {
                            self.state = InventoryState::Reply;
                        }
                    }
                    InventoryState::Reply => {
                        // Our reply was not acknowledged (collision): return to
                        // arbitration and wait for the next round.
                        self.state = InventoryState::Ready;
                    }
                    _ => {}
                }
            }
            ReaderCommand::Ack => {
                if self.state == InventoryState::Reply && acked_rn16 == Some(self.rn16) {
                    self.state = InventoryState::Acknowledged;
                } else if self.state == InventoryState::Reply {
                    // ACK for somebody else while we replied: collision lost.
                    self.state = InventoryState::Ready;
                }
            }
            ReaderCommand::BuzzTrigger | ReaderCommand::BuzzStop => {
                // Buzz commands do not interact with the Gen-2 inventory FSM.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_ready() {
        let tag = TagStateMachine::new(1);
        assert_eq!(tag.state(), InventoryState::Ready);
        assert!(!tag.is_replying());
    }

    #[test]
    fn query_places_tag_in_round() {
        let mut tag = TagStateMachine::new(2);
        tag.on_command(ReaderCommand::Query { q: 4 }, None);
        assert!(matches!(
            tag.state(),
            InventoryState::Arbitrate | InventoryState::Reply
        ));
        assert!(tag.slot_counter() < 16);
    }

    #[test]
    fn queryrep_counts_down_to_reply() {
        let mut tag = TagStateMachine::new(3);
        tag.on_command(ReaderCommand::Query { q: 4 }, None);
        let mut steps = 0;
        while tag.state() == InventoryState::Arbitrate {
            tag.on_command(ReaderCommand::QueryRep, None);
            steps += 1;
            assert!(steps <= 16, "tag never reached Reply");
        }
        assert_eq!(tag.state(), InventoryState::Reply);
    }

    #[test]
    fn ack_with_matching_rn16_identifies_tag() {
        let mut tag = TagStateMachine::new(4);
        tag.on_command(ReaderCommand::Query { q: 0 }, None);
        assert_eq!(tag.state(), InventoryState::Reply);
        let rn = tag.rn16();
        tag.on_command(ReaderCommand::Ack, Some(rn));
        assert_eq!(tag.state(), InventoryState::Acknowledged);
        // A new Query must not re-enlist an acknowledged tag.
        tag.on_command(ReaderCommand::Query { q: 4 }, None);
        assert_eq!(tag.state(), InventoryState::Acknowledged);
    }

    #[test]
    fn ack_with_wrong_rn16_resets_tag() {
        let mut tag = TagStateMachine::new(5);
        tag.on_command(ReaderCommand::Query { q: 0 }, None);
        let rn = tag.rn16();
        tag.on_command(ReaderCommand::Ack, Some(rn.wrapping_add(1)));
        assert_eq!(tag.state(), InventoryState::Ready);
    }

    #[test]
    fn unacknowledged_reply_returns_to_ready_on_queryrep() {
        let mut tag = TagStateMachine::new(6);
        tag.on_command(ReaderCommand::Query { q: 0 }, None);
        assert_eq!(tag.state(), InventoryState::Reply);
        tag.on_command(ReaderCommand::QueryRep, None);
        assert_eq!(tag.state(), InventoryState::Ready);
    }

    #[test]
    fn buzz_commands_do_not_disturb_fsm() {
        let mut tag = TagStateMachine::new(7);
        tag.on_command(ReaderCommand::Query { q: 2 }, None);
        let before = tag.state();
        tag.on_command(ReaderCommand::BuzzTrigger, None);
        tag.on_command(ReaderCommand::BuzzStop, None);
        assert_eq!(tag.state(), before);
    }

    #[test]
    fn new_round_redraws_rn16() {
        let mut tag = TagStateMachine::new(8);
        tag.on_command(ReaderCommand::Query { q: 4 }, None);
        let first = tag.rn16();
        tag.on_command(ReaderCommand::QueryAdjust { q: 4 }, None);
        let second = tag.rn16();
        // Not guaranteed to differ for every seed, but for this fixed seed the
        // redraw is observable; the important property is the redraw happens.
        assert_ne!(first, second);
    }
}
