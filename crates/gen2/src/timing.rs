//! Link timing: converting protocol events into air time.
//!
//! Fig. 14 of the paper reports identification *time* in milliseconds, so the
//! FSA baseline and Buzz's identification protocol both need a consistent
//! accounting of how long each command, reply, and turnaround gap occupies the
//! channel.  The defaults below follow the paper's setup: the reader transmits
//! queries at 27 kbps, tags backscatter at 80 kbps, and the Gen-2 turnaround
//! times T1/T2 are on the order of one uplink symbol each.

use crate::{Gen2Error, Gen2Result};

/// Air-interface timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTiming {
    /// Reader → tag (downlink) bit rate in bits/second.
    pub downlink_bps: f64,
    /// Tag → reader (uplink, backscatter) bit rate in bits/second.
    pub uplink_bps: f64,
    /// Gap between a reader command and the tag reply (T1), seconds.
    pub t1_s: f64,
    /// Gap between a tag reply and the next reader command (T2), seconds.
    pub t2_s: f64,
    /// Uplink preamble length in bits (prepended to every tag reply).
    pub uplink_preamble_bits: usize,
}

impl LinkTiming {
    /// The timing used throughout the paper's evaluation: 27 kbps downlink,
    /// 80 kbps uplink, one-symbol turnarounds, 6-bit uplink preamble.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            downlink_bps: 27_000.0,
            uplink_bps: 80_000.0,
            t1_s: 62.5e-6,
            t2_s: 62.5e-6,
            uplink_preamble_bits: 6,
        }
    }

    /// Validates the timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Gen2Error::InvalidParameter`] for non-positive rates or
    /// negative gaps.
    pub fn validate(&self) -> Gen2Result<()> {
        if !(self.downlink_bps > 0.0 && self.downlink_bps.is_finite()) {
            return Err(Gen2Error::InvalidParameter(
                "downlink rate must be positive",
            ));
        }
        if !(self.uplink_bps > 0.0 && self.uplink_bps.is_finite()) {
            return Err(Gen2Error::InvalidParameter("uplink rate must be positive"));
        }
        if self.t1_s < 0.0 || self.t2_s < 0.0 {
            return Err(Gen2Error::InvalidParameter(
                "turnaround gaps must be non-negative",
            ));
        }
        Ok(())
    }

    /// Duration of a downlink transmission of `bits` bits, in seconds.
    #[must_use]
    pub fn downlink_s(&self, bits: usize) -> f64 {
        bits as f64 / self.downlink_bps
    }

    /// Duration of an uplink (tag) transmission of `bits` payload bits
    /// including the preamble, in seconds.
    #[must_use]
    pub fn uplink_s(&self, bits: usize) -> f64 {
        (bits + self.uplink_preamble_bits) as f64 / self.uplink_bps
    }

    /// Duration of one uplink symbol (one bit period) in seconds — the length
    /// of a Buzz identification time slot, which carries a single bit.
    #[must_use]
    pub fn uplink_symbol_s(&self) -> f64 {
        1.0 / self.uplink_bps
    }

    /// A complete command/reply exchange: downlink command, T1, uplink reply,
    /// T2.  Either part may be zero bits (e.g. a slot with no reply).
    #[must_use]
    pub fn exchange_s(&self, downlink_bits: usize, uplink_bits: usize) -> f64 {
        let mut total = 0.0;
        if downlink_bits > 0 {
            total += self.downlink_s(downlink_bits);
        }
        total += self.t1_s;
        if uplink_bits > 0 {
            total += self.uplink_s(uplink_bits);
        }
        total += self.t2_s;
        total
    }
}

impl Default for LinkTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Converts seconds to milliseconds (the unit the paper's figures use).
#[must_use]
pub fn s_to_ms(seconds: f64) -> f64 {
    seconds * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(LinkTiming::paper_default().validate().is_ok());
        assert_eq!(LinkTiming::default(), LinkTiming::paper_default());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut t = LinkTiming::paper_default();
        t.downlink_bps = 0.0;
        assert!(t.validate().is_err());
        let mut t = LinkTiming::paper_default();
        t.uplink_bps = f64::NAN;
        assert!(t.validate().is_err());
        let mut t = LinkTiming::paper_default();
        t.t1_s = -1.0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn durations_scale_with_bits() {
        let t = LinkTiming::paper_default();
        assert!((t.downlink_s(27) - 0.001).abs() < 1e-12);
        // 16-bit RN16 + 6-bit preamble at 80 kbps = 275 µs.
        assert!((t.uplink_s(16) - 275e-6).abs() < 1e-9);
        assert!((t.uplink_symbol_s() - 12.5e-6).abs() < 1e-12);
    }

    #[test]
    fn exchange_includes_gaps() {
        let t = LinkTiming::paper_default();
        let full = t.exchange_s(22, 16);
        let expected = t.downlink_s(22) + t.t1_s + t.uplink_s(16) + t.t2_s;
        assert!((full - expected).abs() < 1e-12);
        // An empty slot still pays the turnaround gaps.
        let empty = t.exchange_s(4, 0);
        assert!((empty - (t.downlink_s(4) + t.t1_s + t.t2_s)).abs() < 1e-12);
    }

    #[test]
    fn ms_conversion() {
        assert!((s_to_ms(0.0275) - 27.5).abs() < 1e-12);
    }
}
