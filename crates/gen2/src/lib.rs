//! EPC Class-1 Generation-2 MAC substrate.
//!
//! Buzz is evaluated against the identification procedure of the EPC Gen-2
//! standard — Framed Slotted Aloha (FSA) with the reader's Q-adjustment
//! algorithm — and borrows its link-timing structure (reader commands,
//! inter-frame gaps, RN16 temporary ids).  This crate implements that
//! substrate:
//!
//! * [`timing`] — bit rates and command/turnaround durations used to convert
//!   slot counts into milliseconds (the unit of Fig. 14),
//! * [`commands`] — the reader command set and each command's air length,
//! * [`state`] — the tag-side inventory state machine,
//! * [`fsa`] — the Framed Slotted Aloha inventory rounds with the standard's
//!   Q-adjustment rule (`C = 0.3`), plus the "FSA with known K̂" variant the
//!   paper uses as a stronger baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod fsa;
pub mod state;
pub mod timing;

pub use commands::ReaderCommand;
pub use fsa::{FsaConfig, FsaOutcome, FsaSimulator, SlotKind};
pub use state::{InventoryState, TagStateMachine};
pub use timing::LinkTiming;

/// Errors produced by the Gen-2 substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum Gen2Error {
    /// A configuration value was outside its valid domain.
    InvalidParameter(&'static str),
}

impl core::fmt::Display for Gen2Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Gen2Error::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for Gen2Error {}

/// Result alias for Gen-2 operations.
pub type Gen2Result<T> = Result<T, Gen2Error>;
