//! Framed Slotted Aloha inventory with the Gen-2 Q-adjustment algorithm.
//!
//! This is the identification baseline of Fig. 14.  The reader opens a frame
//! of `2^Q` slots with a `Query`; each unidentified tag picks a random slot.
//! A slot with exactly one replying tag is a success (the reader ACKs the
//! tag's RN16); a slot with two or more is a collision; an empty slot is
//! wasted.  After every slot the reader nudges a floating-point `Q_fp` up by
//! `C` on a collision and down by `C` on an empty slot (the standard
//! recommends `C = 0.3` and an initial `Q = 4`), and starts a new round with
//! `QueryAdjust` whenever the rounded `Q` changes or the frame is exhausted.
//!
//! The "FSA with known K̂" variant seeds `Q = ⌈log2 K̂⌉` and lets tags reply
//! with a shorter temporary id, which is how the paper grants the baseline the
//! benefit of Buzz's stage-1 estimate.

use backscatter_prng::{Rng64, Xoshiro256};

use crate::commands::ReaderCommand;
use crate::state::{InventoryState, TagStateMachine};
use crate::timing::LinkTiming;
use crate::{Gen2Error, Gen2Result};

/// What happened in one FSA slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// No tag replied.
    Empty,
    /// Exactly one tag replied and was acknowledged.
    Success,
    /// Two or more tags replied and garbled each other.
    Collision,
}

/// Configuration of an FSA inventory run.
#[derive(Debug, Clone, Copy)]
pub struct FsaConfig {
    /// Initial frame-size exponent (the standard's default is 4).
    pub initial_q: u8,
    /// Q-adjustment step (the standard recommends 0.3).
    pub c: f64,
    /// Length of the temporary id a tag backscatters in its slot (16 for the
    /// standard RN16; smaller when the reader has announced an estimate of K).
    pub reply_bits: usize,
    /// Air-interface timing.
    pub timing: LinkTiming,
    /// Safety bound on the number of slots before the run is abandoned.
    pub max_slots: usize,
}

impl FsaConfig {
    /// The configuration used by the paper's plain-FSA baseline.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            initial_q: 4,
            c: 0.3,
            reply_bits: 16,
            timing: LinkTiming::paper_default(),
            max_slots: 100_000,
        }
    }

    /// The "FSA with known K̂" variant: the initial frame size matches the
    /// estimated population and tags reply with just enough bits to stay
    /// distinguishable within a space of `10 · K̂` temporary ids.
    #[must_use]
    pub fn with_known_k(k_hat: usize) -> Self {
        let k = k_hat.max(1);
        let q = (k as f64).log2().ceil() as u8;
        // ceil(log2(10 * K)) bits suffice for the shrunken id space.
        let reply_bits = (((10 * k) as f64).log2().ceil() as usize).max(4);
        Self {
            initial_q: q.max(1),
            c: 0.3,
            reply_bits,
            timing: LinkTiming::paper_default(),
            max_slots: 100_000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Gen2Error::InvalidParameter`] for out-of-range fields.
    pub fn validate(&self) -> Gen2Result<()> {
        self.timing.validate()?;
        if self.initial_q > 15 {
            return Err(Gen2Error::InvalidParameter("initial Q must be ≤ 15"));
        }
        if !(self.c > 0.0 && self.c.is_finite()) {
            return Err(Gen2Error::InvalidParameter("C must be positive"));
        }
        if self.reply_bits == 0 {
            return Err(Gen2Error::InvalidParameter("reply bits must be non-zero"));
        }
        if self.max_slots == 0 {
            return Err(Gen2Error::InvalidParameter("max slots must be non-zero"));
        }
        Ok(())
    }
}

impl Default for FsaConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// The result of an FSA identification run.
#[derive(Debug, Clone, PartialEq)]
pub struct FsaOutcome {
    /// Number of tags successfully identified.
    pub identified: usize,
    /// Number of tags that were present.
    pub population: usize,
    /// Total air time spent, in seconds (including ACK overhead).
    pub total_time_s: f64,
    /// Per-kind slot counts `(empty, success, collision)`.
    pub slot_counts: (usize, usize, usize),
    /// Whether the run hit the slot safety bound before finishing.
    pub truncated: bool,
}

impl FsaOutcome {
    /// Total number of slots used.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.slot_counts.0 + self.slot_counts.1 + self.slot_counts.2
    }

    /// Identification time in milliseconds (the Fig. 14 metric).
    #[must_use]
    pub fn time_ms(&self) -> f64 {
        self.total_time_s * 1e3
    }

    /// Number of tags that were present but never identified (non-zero only
    /// for truncated runs).
    #[must_use]
    pub fn unidentified(&self) -> usize {
        self.population.saturating_sub(self.identified)
    }

    /// Slot efficiency: fraction of slots that were successes (the classic
    /// FSA ceiling is `1/e ≈ 36.8 %`).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            self.slot_counts.1 as f64 / total as f64
        }
    }
}

/// Simulates FSA inventory rounds over a population of tags.
#[derive(Debug, Clone)]
pub struct FsaSimulator {
    config: FsaConfig,
}

impl FsaSimulator {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`Gen2Error::InvalidParameter`] for an invalid configuration.
    pub fn new(config: FsaConfig) -> Gen2Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Runs inventory until every tag is identified (or the safety bound is
    /// hit) and returns the outcome.
    ///
    /// `tag_seeds` gives one deterministic seed per tag present.
    #[must_use]
    pub fn run(&self, tag_seeds: &[u64]) -> FsaOutcome {
        let timing = self.config.timing;
        let mut tags: Vec<TagStateMachine> =
            tag_seeds.iter().map(|&s| TagStateMachine::new(s)).collect();
        let population = tags.len();

        let mut q_fp = f64::from(self.config.initial_q);
        let mut q = self.config.initial_q;
        let mut total_time_s = 0.0;
        let mut counts = (0usize, 0usize, 0usize);
        let mut identified = 0usize;
        let mut truncated = false;

        if population == 0 {
            return FsaOutcome {
                identified,
                population,
                total_time_s,
                slot_counts: counts,
                truncated,
            };
        }

        // Open the first round.
        let mut opener = ReaderCommand::Query { q };
        for tag in &mut tags {
            tag.on_command(opener, None);
        }
        let mut slots_left_in_frame = 1usize << q;
        let mut slots_used = 0usize;

        while identified < population {
            if slots_used >= self.config.max_slots {
                truncated = true;
                break;
            }
            slots_used += 1;

            // The slot is opened either by the Query/QueryAdjust that started
            // the frame (first slot) or by a QueryRep.
            let opener_bits = opener.bits();
            opener = ReaderCommand::QueryRep;

            let replying: Vec<usize> = tags
                .iter()
                .enumerate()
                .filter(|(_, t)| t.is_replying())
                .map(|(i, _)| i)
                .collect();

            match replying.len() {
                0 => {
                    counts.0 += 1;
                    total_time_s += timing.exchange_s(opener_bits, 0);
                    q_fp = (q_fp - self.config.c).max(0.0);
                }
                1 => {
                    counts.1 += 1;
                    let winner = replying[0];
                    total_time_s += timing.exchange_s(opener_bits, self.config.reply_bits);
                    // ACK the winner: downlink ACK echoing the temporary id,
                    // then the tag's brief acknowledgement-reply window.
                    total_time_s +=
                        timing.exchange_s(ReaderCommand::Ack.bits(), self.config.reply_bits);
                    let rn = tags[winner].rn16();
                    for tag in &mut tags {
                        tag.on_command(ReaderCommand::Ack, Some(rn));
                    }
                    // In the rare event two tags share an RN16 both think they
                    // are acknowledged; count actual acknowledged transitions.
                    identified = tags
                        .iter()
                        .filter(|t| t.state() == InventoryState::Acknowledged)
                        .count();
                }
                _ => {
                    counts.2 += 1;
                    total_time_s += timing.exchange_s(opener_bits, self.config.reply_bits);
                    q_fp = (q_fp + self.config.c).min(15.0);
                }
            }

            slots_left_in_frame = slots_left_in_frame.saturating_sub(1);
            let rounded = q_fp.round().clamp(0.0, 15.0) as u8;

            if identified >= population {
                break;
            }

            if rounded != q || slots_left_in_frame == 0 {
                // Start a new round with QueryAdjust.
                q = rounded.max(1);
                q_fp = f64::from(q);
                opener = ReaderCommand::QueryAdjust { q };
                for tag in &mut tags {
                    tag.on_command(opener, None);
                }
                slots_left_in_frame = 1usize << q;
            } else {
                // Advance to the next slot in the current frame.
                for tag in &mut tags {
                    tag.on_command(ReaderCommand::QueryRep, None);
                }
            }
        }

        FsaOutcome {
            identified,
            population,
            total_time_s,
            slot_counts: counts,
            truncated,
        }
    }

    /// Convenience helper: runs the simulator over `k` tags whose seeds are
    /// derived from `experiment_seed`.
    #[must_use]
    pub fn run_population(&self, k: usize, experiment_seed: u64) -> FsaOutcome {
        let mut rng = Xoshiro256::seed_from_u64(experiment_seed);
        let seeds: Vec<u64> = (0..k).map(|_| rng.next_u64()).collect();
        self.run(&seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(FsaConfig::standard().validate().is_ok());
        let mut c = FsaConfig::standard();
        c.initial_q = 20;
        assert!(c.validate().is_err());
        let mut c = FsaConfig::standard();
        c.c = 0.0;
        assert!(c.validate().is_err());
        let mut c = FsaConfig::standard();
        c.reply_bits = 0;
        assert!(c.validate().is_err());
        let mut c = FsaConfig::standard();
        c.max_slots = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_known_k_shrinks_frame_and_ids() {
        let cfg = FsaConfig::with_known_k(16);
        assert_eq!(cfg.initial_q, 4);
        assert!(cfg.reply_bits < 16);
        let cfg1 = FsaConfig::with_known_k(0);
        assert!(cfg1.initial_q >= 1);
    }

    #[test]
    fn empty_population_terminates_immediately() {
        let sim = FsaSimulator::new(FsaConfig::standard()).unwrap();
        let out = sim.run(&[]);
        assert_eq!(out.identified, 0);
        assert_eq!(out.total_slots(), 0);
        assert_eq!(out.total_time_s, 0.0);
        assert!(!out.truncated);
    }

    #[test]
    fn identifies_every_tag() {
        let sim = FsaSimulator::new(FsaConfig::standard()).unwrap();
        for k in [1usize, 4, 8, 16] {
            let out = sim.run_population(k, 42);
            assert_eq!(out.identified, k, "failed for k = {k}");
            assert!(!out.truncated);
            assert!(out.total_time_s > 0.0);
            assert_eq!(out.slot_counts.1, out.population.max(out.slot_counts.1));
        }
    }

    #[test]
    fn known_k_is_faster_on_average() {
        // Average over several trials: granting FSA the estimate of K should
        // reduce identification time (the paper reports 20–40 %).
        let k = 16;
        let trials = 20;
        let std_sim = FsaSimulator::new(FsaConfig::standard()).unwrap();
        let known_sim = FsaSimulator::new(FsaConfig::with_known_k(k)).unwrap();
        let avg = |sim: &FsaSimulator| -> f64 {
            (0..trials)
                .map(|t| sim.run_population(k, 1000 + t).total_time_s)
                .sum::<f64>()
                / trials as f64
        };
        let t_std = avg(&std_sim);
        let t_known = avg(&known_sim);
        assert!(
            t_known < t_std,
            "known-K FSA ({t_known:.4}s) not faster than standard ({t_std:.4}s)"
        );
    }

    #[test]
    fn identification_time_grows_with_population() {
        let sim = FsaSimulator::new(FsaConfig::standard()).unwrap();
        let trials = 10;
        let avg = |k: usize| -> f64 {
            (0..trials)
                .map(|t| sim.run_population(k, 7 + t).total_time_s)
                .sum::<f64>()
                / trials as f64
        };
        assert!(avg(16) > avg(4));
    }

    #[test]
    fn efficiency_is_bounded_by_theory() {
        // FSA cannot beat the 1/e slot-efficiency ceiling by a wide margin;
        // allow some slack for small populations and the ACK-free accounting.
        let sim = FsaSimulator::new(FsaConfig::standard()).unwrap();
        let mut total_eff = 0.0;
        let trials = 20;
        for t in 0..trials {
            total_eff += sim.run_population(16, 500 + t).efficiency();
        }
        let avg_eff = total_eff / trials as f64;
        assert!(avg_eff < 0.55, "avg efficiency = {avg_eff}");
        assert!(avg_eff > 0.15, "avg efficiency = {avg_eff}");
    }

    #[test]
    fn outcome_helpers() {
        let out = FsaOutcome {
            identified: 2,
            population: 2,
            total_time_s: 0.01,
            slot_counts: (3, 2, 1),
            truncated: false,
        };
        assert_eq!(out.total_slots(), 6);
        assert!((out.time_ms() - 10.0).abs() < 1e-12);
        assert!((out.efficiency() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(out.unidentified(), 0);
        let truncated = FsaOutcome {
            identified: 1,
            population: 3,
            ..out
        };
        assert_eq!(truncated.unidentified(), 2);
    }
}
